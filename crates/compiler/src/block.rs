//! Compilation of one transformer block to a CENT trace (§5.4).
//!
//! A block is assigned a set of PIM channels within one device (or a
//! tensor-parallel shard of channels across devices). [`BlockPlacement`]
//! plans every DRAM region — weight matrices, per-head KV caches, rotary
//! tables, scratch rows — and [`compile_decode_step`] emits the full
//! instruction trace for one token:
//!
//! ```text
//! RMSNorm → Wq/Wk/Wv GEMVs → RoPE (PIM products + RISC-V combine)
//!   → KV append → per-head attention (streamed softmax) → Wo (+residual)
//!   → RMSNorm → gated FFN with SiLU in the accumulation registers
//!   → W2 (+residual)
//! ```
//!
//! Every vector larger than its ring drains through the Shared Buffer in
//! pass-sized chunks, so the same compiler handles the 64-wide test model
//! and GPT3-175B. RMSNorm gains and the `1/sqrt(head_dim)` attention scale
//! are folded into the weight matrices at load time (exact rewrites).

use cent_types::consts::{ACC_REGS_PER_PU, COLS_PER_ROW, LANES_PER_BEAT};
use cent_types::{BankId, CentError, CentResult, ChannelId, ChannelMask, ColAddr, RowAddr, SbSlot};

use cent_isa::Instruction;
use cent_model::{FfnKind, ModelConfig, PositionalKind};

use crate::builder::{pc, BlockPhase, TraceBuilder, VecSource};
use crate::layout::{GemvLayout, KvLayout, RowAllocator};

/// Maximum tokens scored per attention segment when no registers are
/// reserved for the value accumulation (32 registers × 16 banks). The
/// actual segment size subtracts `head_dim/16` registers, which hold the
/// running value-GEMV accumulation across segments.
pub const SEGMENT_TOKENS_MAX: usize = ACC_REGS_PER_PU * LANES_PER_BEAT;

/// Estimates the Shared Buffer slots one decode step needs on `channels`
/// channels — the planning-time mirror of `compile_decode_step`'s regions.
pub fn sb_demand(cfg: &ModelConfig, channels: usize) -> usize {
    let c = channels.max(1);
    let groups = |m: usize| m.div_ceil(LANES_PER_BEAT);
    let pass_slots = |m: usize| groups(m).div_ceil(c).min(ACC_REGS_PER_PU) * c;
    let out_slots = |m: usize| groups(m).div_ceil(c) * c;
    let h = cfg.hidden;
    let ring = pass_slots(h).max(pass_slots(cfg.kv_dim())).max(pass_slots(cfg.ffn_hidden));
    let tmp = pass_slots(h).max(pass_slots(h)); // wo and w2 both output `h`
    let x = out_slots(h).max(h.div_ceil(LANES_PER_BEAT));
    let up_ring = if cfg.ffn == FfnKind::GatedSilu { pass_slots(cfg.ffn_hidden) } else { 0 };
    let hd_beats = cfg.head_dim() / LANES_PER_BEAT;
    let misc = 3 + 4 + 2 * ACC_REGS_PER_PU + 4 * hd_beats.max(1) + 8;
    x + ring + tmp + up_ring + misc
}

/// The largest channel count ≤ `desired` whose compiled block fits the
/// 2048-slot Shared Buffer. Wide tensor-parallel shards hit this limit:
/// more channels mean larger per-pass drain regions.
pub fn max_feasible_channels(cfg: &ModelConfig, desired: usize) -> usize {
    let budget = cent_types::consts::SHARED_BUFFER_SLOTS;
    for c in (1..=desired.max(1)).rev() {
        if sb_demand(cfg, c) <= budget {
            return c;
        }
    }
    1
}

/// Planned placement of one transformer block on a channel set.
#[derive(Debug, Clone)]
pub struct BlockPlacement {
    /// Model architecture.
    pub cfg: ModelConfig,
    /// The channels of this block.
    pub channels: Vec<ChannelId>,
    /// Query projection.
    pub wq: GemvLayout,
    /// Key projection.
    pub wk: GemvLayout,
    /// Value projection.
    pub wv: GemvLayout,
    /// Output projection.
    pub wo: GemvLayout,
    /// FFN gate (or first) matrix.
    pub w1: GemvLayout,
    /// FFN down matrix.
    pub w2: GemvLayout,
    /// FFN up matrix (gated FFNs only; zero-sized layout otherwise).
    pub w3: Option<GemvLayout>,
    /// Per-KV-head cache layout; head `h` lives on `channels[h % channels]`.
    pub kv: Vec<KvLayout>,
    /// First row of the rotary cos/sin tables (replicated on all channels).
    pub rope_table: RowAddr,
    /// Scratch row for the RMSNorm self dot product.
    pub dot_row: RowAddr,
    /// Scratch rows for RMSNorm element-wise scaling (normed vector lives
    /// here, quartered, between phases).
    pub norm_row: RowAddr,
    /// Scratch rows for the FFN gate⊙up product chunks.
    pub ffn_row: RowAddr,
}

impl BlockPlacement {
    /// Plans a block over `channels` (all within one device).
    ///
    /// # Errors
    ///
    /// Fails if the weights, KV caches and scratch regions exceed the
    /// per-bank row budget, or the channel set is empty.
    pub fn plan(cfg: &ModelConfig, channels: Vec<ChannelId>) -> CentResult<Self> {
        if channels.is_empty() {
            return Err(CentError::mapping("block placement needs channels"));
        }
        let h = cfg.hidden;
        let kv_dim = cfg.kv_dim();
        let mut rows = RowAllocator::new();
        let plan_m = |rows: &mut RowAllocator, m: usize, n: usize, chans: &[ChannelId]| {
            let probe = GemvLayout::plan(chans.to_vec(), RowAddr(0), m, n)?;
            let base = rows.alloc(probe.rows_per_bank())?;
            GemvLayout::plan(chans.to_vec(), base, m, n)
        };
        let wq = plan_m(&mut rows, h, h, &channels)?;
        let wk = plan_m(&mut rows, kv_dim, h, &channels)?;
        let wv = plan_m(&mut rows, kv_dim, h, &channels)?;
        let wo = plan_m(&mut rows, h, h, &channels)?;
        let w1 = plan_m(&mut rows, cfg.ffn_hidden, h, &channels)?;
        let w2 = plan_m(&mut rows, h, cfg.ffn_hidden, &channels)?;
        let w3 = match cfg.ffn {
            FfnKind::GatedSilu => Some(plan_m(&mut rows, cfg.ffn_hidden, h, &channels)?),
            FfnKind::Gelu => None,
        };
        // KV caches: one layout per KV head, round-robin across channels.
        // Each channel must reserve the same row span, so allocate the
        // worst-case number of heads per channel.
        let heads_per_channel = cfg.kv_heads.div_ceil(channels.len());
        let mut kv = Vec::with_capacity(cfg.kv_heads);
        let kv_base = rows.mark_addr();
        let mut kv_end = kv_base;
        for head in 0..cfg.kv_heads {
            let channel = channels[head % channels.len()];
            let slot_on_channel = head / channels.len();
            let mut base = kv_base;
            for _ in 0..slot_on_channel {
                let (probe, next) = KvLayout::plan(channel, base, cfg.head_dim(), cfg.max_context)?;
                let _ = probe;
                base = next;
            }
            let (layout, next) = KvLayout::plan(channel, base, cfg.head_dim(), cfg.max_context)?;
            kv.push(layout);
            kv_end = RowAddr(kv_end.0.max(next.0));
        }
        let _ = heads_per_channel;
        rows.skip_to(kv_end)?;
        // Rotary tables: ctx positions × 2 layouts × head_dim elements.
        let hd = cfg.head_dim();
        let positions_per_row = (COLS_PER_ROW * LANES_PER_BEAT) / hd;
        let rope_rows = if cfg.positional == PositionalKind::Rotary {
            cfg.max_context.div_ceil(positions_per_row)
        } else {
            0
        };
        let rope_table = rows.alloc(rope_rows.max(1))?;
        let dot_row = rows.alloc(h.div_ceil(LANES_PER_BEAT * 8).div_ceil(COLS_PER_ROW).max(1))?;
        let norm_rows = h.div_ceil(LANES_PER_BEAT * 4).div_ceil(COLS_PER_ROW).max(1);
        let norm_row = rows.alloc(norm_rows)?;
        let chunk = ACC_REGS_PER_PU * LANES_PER_BEAT * channels.len();
        let ffn_rows = chunk.div_ceil(LANES_PER_BEAT * 4).div_ceil(COLS_PER_ROW).max(1);
        let ffn_row = rows.alloc(ffn_rows)?;
        Ok(BlockPlacement {
            cfg: cfg.clone(),
            channels,
            wq,
            wk,
            wv,
            wo,
            w1,
            w2,
            w3,
            kv,
            rope_table,
            dot_row,
            norm_row,
            ffn_row,
        })
    }

    /// Mask over this block's channels.
    pub fn chmask(&self) -> ChannelMask {
        self.channels.iter().copied().collect()
    }

    /// Rotary table location for `position`: `(row, col)` of the
    /// `head_dim`-element `[cos|sin]` run (bank `4g+1`) and `[sin|cos]` run
    /// (bank `4g+5` — i.e. bank 5).
    pub fn rope_entry(&self, position: usize) -> (RowAddr, ColAddr) {
        let hd = self.cfg.head_dim();
        let per_row = (COLS_PER_ROW * LANES_PER_BEAT) / hd;
        let row = RowAddr(self.rope_table.0 + (position / per_row) as u32);
        let col = ColAddr(((position % per_row) * (hd / LANES_PER_BEAT)) as u32);
        (row, col)
    }
}

impl RowAllocator {
    /// Current allocation point as a row address.
    pub fn mark_addr(&self) -> RowAddr {
        RowAddr(self.used() as u32)
    }

    /// Advances the allocator past externally planned rows.
    ///
    /// # Errors
    ///
    /// Fails if `row` exceeds the bank budget.
    pub fn skip_to(&mut self, row: RowAddr) -> CentResult<()> {
        if row.index() < self.used() {
            return Ok(());
        }
        let delta = row.index() - self.used();
        self.alloc(delta).map(|_| ())
    }
}

/// The compiled trace for one token step of one block, plus its Shared
/// Buffer interface.
#[derive(Debug, Clone)]
pub struct BlockStep {
    /// The instruction trace.
    pub trace: Vec<Instruction>,
    /// Per-instruction phase tags (parallel to `trace`).
    pub tags: Vec<BlockPhase>,
    /// Slot of the block input/output region (`x` in, `x + attn + ffn` out).
    pub x_slot: SbSlot,
    /// Beats of the embedding vector.
    pub x_beats: usize,
    /// Peak Shared Buffer slots used.
    pub sb_high_water: usize,
}

/// Compiles one decode step: the block consumes the embedding at `x_slot`
/// (written by the host or a `RECV_CXL`) at `position` (0-based; the KV
/// cache already holds `position` earlier tokens) and leaves the block
/// output in the same region.
///
/// # Errors
///
/// Fails if the Shared Buffer budget is exceeded (model/channel combination
/// too large) or the position exceeds the planned context.
pub fn compile_decode_step(p: &BlockPlacement, position: usize) -> CentResult<BlockStep> {
    let cfg = &p.cfg;
    if position >= cfg.max_context {
        return Err(CentError::mapping(format!(
            "position {position} exceeds planned context {}",
            cfg.max_context
        )));
    }
    let h = cfg.hidden;
    let hd = cfg.head_dim();
    let hd_beats = hd / LANES_PER_BEAT;
    let x_beats = h.div_ceil(LANES_PER_BEAT);
    let chmask = p.chmask();
    let c = p.channels.len();
    let ring_slots = [&p.wq, &p.wk, &p.wv, &p.w1]
        .iter()
        .map(|l| l.pass_slots())
        .chain(p.w3.as_ref().map(|l| l.pass_slots()))
        .max()
        .expect("layouts exist");
    let tmp_slots = p.wo.pass_slots().max(p.w2.pass_slots());

    let mut b = TraceBuilder::new();
    // Persistent regions.
    let x_slot = b.sb.alloc(p.wo.out_slots().max(p.w2.out_slots()).max(x_beats))?;
    let scratch = b.sb.alloc(4)?; // dot partials, sumsq, scale beat, denom
    let ring = b.sb.alloc(ring_slots)?;
    let tmp = b.sb.alloc(tmp_slots)?;
    // Attention working set: scores/exp for one segment + head output + the
    // softmax scalar right after the head (VEC_SCALE convention), + RoPE io.
    let seg_slots = ACC_REGS_PER_PU; // one slot per scoring register
    let score_slot = b.sb.alloc(seg_slots)?;
    let exp_slot = b.sb.alloc(seg_slots)?;
    let head_raw = b.sb.alloc(hd_beats)?;
    let head_scalar = b.sb.alloc(1)?;
    debug_assert_eq!(head_scalar.index(), head_raw.index() + hd_beats);
    let head_final = b.sb.alloc(hd_beats)?;
    let rope_ab = b.sb.alloc(hd_beats.max(1))?;
    let rope_prod = b.sb.alloc(2 * hd_beats.max(1))?;
    let denom = b.sb.alloc(1)?;
    let denom_sum = b.sb.alloc(1)?;

    // ---- Phase 1: RMSNorm(x) into the norm scratch banks. -----------------
    b.set_phase(BlockPhase::Norm);
    let norm_stride = b.rmsnorm_to_scratch(chmask, p.dot_row, p.norm_row, x_slot, h, scratch);
    let normed = VecSource::ScratchQuartered { row: p.norm_row, per_group: norm_stride };

    // ---- Phase 2: K projection, RoPE, cache append. ------------------------
    let heads_per_pass_k = (512 * c) / hd;
    let kv_layouts = p.kv.clone();
    let rope_on = cfg.positional == PositionalKind::Rotary;
    let rope_entry = p.rope_entry(position);
    {
        let wk = p.wk.clone();
        b.set_phase(BlockPhase::FcQkv);
        b.gemv_ring(&wk, normed, ring, None, |b, pass| {
            let first_head = pass * heads_per_pass_k;
            for i in 0..heads_per_pass_k {
                let head = first_head + i;
                if head >= cfg.kv_heads {
                    break;
                }
                let head_slot = SbSlot((ring.index() + i * hd_beats) as u16);
                if rope_on {
                    b.set_phase(BlockPhase::Rope);
                    emit_rope(b, p, rope_entry, head_slot, rope_ab, rope_prod, hd);
                }
                // Append to the key cache: one contiguous bank write.
                b.set_phase(BlockPhase::KvAppend);
                let kv = &kv_layouts[head];
                let (bank, row, col) = kv.key_location(position);
                b.emit(Instruction::WrSbk {
                    ch: kv.channel,
                    opsize: hd_beats as u32,
                    bank,
                    row,
                    col,
                    rs: head_slot,
                });
                b.set_phase(BlockPhase::FcQkv);
            }
        });
    }

    // ---- Phase 3: V projection, transposed cache append. -------------------
    {
        let wv = p.wv.clone();
        b.set_phase(BlockPhase::FcQkv);
        b.gemv_ring(&wv, normed, ring, None, |b, pass| {
            b.set_phase(BlockPhase::KvAppend);
            let first_head = pass * heads_per_pass_k;
            for i in 0..heads_per_pass_k {
                let head = first_head + i;
                if head >= cfg.kv_heads {
                    break;
                }
                let kv = &kv_layouts[head];
                for dg in 0..hd_beats {
                    let (_, row, elem) = kv.value_location(dg * LANES_PER_BEAT, position);
                    b.emit(Instruction::WrAbk {
                        ch: kv.channel,
                        row,
                        elem: elem as u32,
                        rs: SbSlot((ring.index() + i * hd_beats + dg) as u16),
                    });
                }
            }
            b.set_phase(BlockPhase::FcQkv);
        });
    }

    // ---- Phase 4: Q projection + attention + output projection. ------------
    let ctx = position + 1;
    let group = cfg.heads / cfg.kv_heads;
    let heads_per_pass_q = (512 * c) / hd;
    {
        let wq = p.wq.clone();
        let wo = p.wo.clone();
        b.set_phase(BlockPhase::FcQkv);
        b.gemv_ring(&wq, normed, ring, None, |b, pass| {
            let first_head = pass * heads_per_pass_q;
            for i in 0..heads_per_pass_q {
                let head = first_head + i;
                if head >= cfg.heads {
                    break;
                }
                let q_slot = SbSlot((ring.index() + i * hd_beats) as u16);
                if rope_on {
                    b.set_phase(BlockPhase::Rope);
                    emit_rope(b, p, rope_entry, q_slot, rope_ab, rope_prod, hd);
                }
                b.set_phase(BlockPhase::Attention);
                let kv = &kv_layouts[head / group];
                emit_attention_head(
                    b,
                    kv,
                    q_slot,
                    ctx,
                    hd_beats,
                    score_slot,
                    exp_slot,
                    head_raw,
                    head_scalar,
                    denom,
                    denom_sum,
                );
                // Scale by 1/Σexp into the final head vector.
                b.emit(Instruction::Riscv {
                    opsize: hd as u32,
                    pc: pc::VEC_SCALE,
                    rd: head_final,
                    rs: head_raw,
                });
                // Fold this head into x via the output projection.
                b.set_phase(BlockPhase::FcWo);
                b.gemv_accumulate(&wo, VecSource::Sb(head_final), head * hd, hd, tmp, x_slot);
                b.set_phase(BlockPhase::FcQkv);
            }
        });
    }

    // ---- Phase 5: RMSNorm(x1) and the FFN. ---------------------------------
    b.set_phase(BlockPhase::Norm);
    let norm_stride2 = b.rmsnorm_to_scratch(chmask, p.dot_row, p.norm_row, x_slot, h, scratch);
    let normed2 = VecSource::ScratchQuartered { row: p.norm_row, per_group: norm_stride2 };
    let gate_ring = ring;
    let up_ring = b.sb.alloc(ring_slots)?;
    let silu_af = cent_pim_af_silu();
    let gelu_af = cent_pim_af_gelu();
    let w1 = p.w1.clone();
    let w2 = p.w2.clone();
    let w3 = p.w3.clone();
    let ffn_row = p.ffn_row;
    b.set_phase(BlockPhase::FcFfn);
    match cfg.ffn {
        FfnKind::GatedSilu => {
            let w3 = w3.expect("gated FFN has w3");
            // Gate and up stream pass-by-pass; each chunk is multiplied in
            // the scratch banks and folded into x through W2.
            for pass in 0..w1.passes {
                emit_one_pass(&mut b, &w1, normed2, pass, Some(silu_af), gate_ring);
                emit_one_pass(&mut b, &w3, normed2, pass, None, up_ring);
                let chunk = 512 * c;
                let chunk_base = pass * chunk;
                let chunk_len = chunk.min(cfg.ffn_hidden.saturating_sub(chunk_base));
                if chunk_len == 0 {
                    break;
                }
                let beats = chunk_len.div_ceil(LANES_PER_BEAT);
                let per_group = b.ew_mul_scratch(chmask, ffn_row, gate_ring, up_ring, beats);
                b.gemv_accumulate(
                    &w2,
                    VecSource::ScratchQuartered { row: ffn_row, per_group },
                    chunk_base,
                    chunk_len,
                    tmp,
                    x_slot,
                );
            }
        }
        FfnKind::Gelu => {
            // Plain FFN: W1 with GeLU in the registers, then W2.
            for pass in 0..w1.passes {
                emit_one_pass(&mut b, &w1, normed2, pass, Some(gelu_af), gate_ring);
                let chunk = 512 * c;
                let chunk_base = pass * chunk;
                let chunk_len = chunk.min(cfg.ffn_hidden.saturating_sub(chunk_base));
                if chunk_len == 0 {
                    break;
                }
                b.gemv_accumulate(
                    &w2,
                    VecSource::Sb(gate_ring),
                    chunk_base,
                    chunk_len,
                    tmp,
                    x_slot,
                );
            }
        }
    }

    let sb_high_water = b.sb.high_water();
    let (trace, tags) = b.finish_tagged();
    Ok(BlockStep { trace, tags, x_slot, x_beats, sb_high_water })
}

/// AF id of SiLU in the PIM lookup tables.
fn cent_pim_af_silu() -> u8 {
    4 // matches cent_pim::ActivationFunction::Silu
}

/// AF id of GeLU in the PIM lookup tables.
fn cent_pim_af_gelu() -> u8 {
    3 // matches cent_pim::ActivationFunction::Gelu
}

/// Emits a single GEMV pass into a ring (helper shared by the FFN phases).
fn emit_one_pass(
    b: &mut TraceBuilder,
    layout: &GemvLayout,
    source: VecSource,
    pass: usize,
    af_id: Option<u8>,
    ring: SbSlot,
) {
    use cent_isa::MacOperand;
    use cent_types::AccRegId;
    let chmask = layout.chmask();
    let pass_slots = ACC_REGS_PER_PU * layout.channels.len();
    let regs = layout.regs_in_pass(pass);
    for tile in 0..layout.tiles {
        let beats = layout.tile_beats(tile);
        b.load_tile(chmask, source, tile, beats);
        for reg in 0..regs {
            if tile == 0 {
                b.emit(Instruction::WrBias {
                    chmask,
                    rs: b.zero_slot,
                    reg: AccRegId::new(reg as u8),
                });
            }
            b.emit(Instruction::MacAbk {
                chmask,
                opsize: beats as u32,
                row: layout.dram_row(pass, reg, tile),
                col: ColAddr(0),
                reg: AccRegId::new(reg as u8),
                operand: MacOperand::GlobalBuffer { slot: 0 },
            });
        }
    }
    for reg in 0..regs {
        if let Some(af) = af_id {
            b.emit(Instruction::Af { chmask, af_id: af, reg: AccRegId::new(reg as u8) });
        }
        let local = layout.out_slot(0, pass, reg) - pass * pass_slots;
        b.emit(Instruction::RdMac {
            chmask,
            rd: SbSlot((ring.index() + local) as u16),
            reg: AccRegId::new(reg as u8),
        });
    }
}

/// Emits RoPE for one head in place: deinterleave on a RISC-V core, two
/// element-wise product layouts in the PIM banks (groups 0 and 1 compute
/// `[a·cos | b·sin]` and `[a·sin | b·cos]` in one `EW_MUL`), then the
/// RISC-V combine writes the rotated head back.
fn emit_rope(
    b: &mut TraceBuilder,
    p: &BlockPlacement,
    entry: (RowAddr, ColAddr),
    head_slot: SbSlot,
    rope_ab: SbSlot,
    rope_prod: SbSlot,
    hd: usize,
) {
    let hd_beats = hd / LANES_PER_BEAT;
    let channel = p.channels[0];
    let (row, col) = entry;
    b.emit(Instruction::Riscv {
        opsize: (hd / 2) as u32,
        pc: pc::DEINTERLEAVE,
        rd: rope_ab,
        rs: head_slot,
    });
    for bank in [BankId(0), BankId(4)] {
        b.emit(Instruction::WrSbk {
            ch: channel,
            opsize: hd_beats as u32,
            bank,
            row,
            col,
            rs: rope_ab,
        });
    }
    b.emit(Instruction::EwMul {
        chmask: ChannelMask::single(channel),
        opsize: hd_beats as u32,
        row,
        col,
    });
    b.emit(Instruction::RdSbk {
        ch: channel,
        opsize: hd_beats as u32,
        bank: BankId(2),
        row,
        col,
        rd: rope_prod,
    });
    b.emit(Instruction::RdSbk {
        ch: channel,
        opsize: hd_beats as u32,
        bank: BankId(6),
        row,
        col,
        rd: SbSlot((rope_prod.index() + hd_beats) as u16),
    });
    b.emit(Instruction::Riscv {
        opsize: (hd / 2) as u32,
        pc: pc::ROPE_COMBINE,
        rd: head_slot,
        rs: rope_prod,
    });
}

/// Emits attention for one query head over `ctx` cached tokens with a
/// streamed softmax: scores and `exp` are produced in 512-token segments,
/// each segment immediately feeds the value GEMV (accumulating in the
/// registers) while the denominator accumulates in the Shared Buffer; the
/// normalisation happens once at the end.
#[allow(clippy::too_many_arguments)]
fn emit_attention_head(
    b: &mut TraceBuilder,
    kv: &KvLayout,
    q_slot: SbSlot,
    ctx: usize,
    hd_beats: usize,
    score_slot: SbSlot,
    exp_slot: SbSlot,
    head_raw: SbSlot,
    head_scalar: SbSlot,
    denom: SbSlot,
    denom_sum: SbSlot,
) {
    use cent_isa::MacOperand;
    use cent_types::AccRegId;
    let chmask = ChannelMask::single(kv.channel);
    // Registers 0..seg_groups score tokens; the top hd_beats registers hold
    // the value-GEMV accumulation across segments.
    let seg_groups = ACC_REGS_PER_PU - hd_beats;
    let seg_tokens_max = seg_groups * LANES_PER_BEAT;
    let v_reg0 = seg_groups;
    // Query to the Global Buffer (slots 0..hd_beats).
    b.emit(Instruction::WrGb { chmask, opsize: hd_beats as u32, gb_slot: 0, rs: q_slot });
    // Reset the running denominator: RED of the zero beat writes a zero beat.
    b.emit(Instruction::Red { opsize: 1, rd: denom, rs: b.zero_slot });
    let segments = ctx.div_ceil(seg_tokens_max);
    let v_rows_per_dim = kv.rows_per_dim_group();
    for seg in 0..segments {
        let seg_base = seg * seg_tokens_max;
        let seg_tokens = seg_tokens_max.min(ctx.saturating_sub(seg_base));
        let groups = seg_tokens.div_ceil(LANES_PER_BEAT);
        // Scores: one MAC_ABK per 16-token group.
        for g in 0..groups {
            let token = seg_base + g * LANES_PER_BEAT;
            let (_, row, col) = kv.key_location(token);
            let reg = AccRegId::new(g as u8);
            b.emit(Instruction::WrBias { chmask, rs: b.zero_slot, reg });
            b.emit(Instruction::MacAbk {
                chmask,
                opsize: hd_beats as u32,
                row,
                col,
                reg,
                operand: MacOperand::GlobalBuffer { slot: 0 },
            });
        }
        for g in 0..groups {
            b.emit(Instruction::RdMac {
                chmask,
                rd: SbSlot((score_slot.index() + g) as u16),
                reg: AccRegId::new(g as u8),
            });
        }
        // exp() on the PNM exponent units.
        b.emit(Instruction::Exp { opsize: groups as u32, rd: exp_slot, rs: score_slot });
        // Clear the padded lanes of the final group: their keys are zero, so
        // exp(0)=1 would pollute the softmax denominator.
        let last_token = (seg_base + groups * LANES_PER_BEAT).min(seg_base + seg_tokens_max);
        if last_token > ctx {
            let valid = LANES_PER_BEAT - (last_token - ctx);
            b.emit(Instruction::Riscv {
                opsize: valid as u32,
                pc: pc::ZERO_TAIL,
                rd: SbSlot((exp_slot.index() + groups - 1) as u16),
                rs: exp_slot,
            });
        }
        // The exp segment feeds the value GEMV via the GB (after the query).
        b.emit(Instruction::WrGb {
            chmask,
            opsize: groups as u32,
            gb_slot: hd_beats as u8,
            rs: exp_slot,
        });
        let seg_beat = seg_base / LANES_PER_BEAT;
        for dg in 0..hd_beats {
            let reg = AccRegId::new((v_reg0 + dg) as u8);
            if seg == 0 {
                b.emit(Instruction::WrBias { chmask, rs: b.zero_slot, reg });
            }
            b.emit(Instruction::MacAbk {
                chmask,
                opsize: groups as u32,
                row: RowAddr(
                    kv.v_base.0 + (dg * v_rows_per_dim) as u32 + (seg_beat / COLS_PER_ROW) as u32,
                ),
                col: ColAddr((seg_beat % COLS_PER_ROW) as u32),
                reg,
                operand: MacOperand::GlobalBuffer { slot: hd_beats as u8 },
            });
        }
        // Fold the segment into the running denominator: pairwise tree.
        let mut len = groups;
        while len > 1 {
            let half = len / 2;
            let top = len - half;
            b.emit(Instruction::Acc {
                opsize: half as u32,
                rd: exp_slot,
                rs: SbSlot((exp_slot.index() + top) as u16),
            });
            len = top;
        }
        b.emit(Instruction::Acc { opsize: 1, rd: denom, rs: exp_slot });
    }
    // Denominator: reduce lanes and invert (pad lanes were cleared above).
    b.emit(Instruction::Red { opsize: 1, rd: denom_sum, rs: denom });
    // Head output: read the value accumulation, then 1/Σ.
    for dg in 0..hd_beats {
        b.emit(Instruction::RdMac {
            chmask,
            rd: SbSlot((head_raw.index() + dg) as u16),
            reg: AccRegId::new((v_reg0 + dg) as u8),
        });
    }
    b.emit(Instruction::Riscv { opsize: 1, pc: pc::RECIP, rd: head_scalar, rs: denom_sum });
}
