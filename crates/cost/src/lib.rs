//! Cost models: die/NRE economics (Figure 12), hardware cost (Table 6) and
//! three-year TCO (Table 4), tokens-per-dollar, and the KV swap-vs-recompute
//! comparator ([`KvSwapCost`]) behind the serving simulator's spill-to-CXL
//! tier.

#![forbid(unsafe_code)]

use cent_cxl::FabricConfig;
use cent_types::{Bandwidth, ByteSize, Dollars, Power, Time};

/// Die-cost model for the CXL controller (§6, Figure 12).
#[derive(Debug, Clone, Copy)]
pub struct DieCostModel {
    /// Die area in mm² (19.0 at 7 nm per §6).
    pub area_mm2: f64,
    /// Wafer diameter in mm.
    pub wafer_diameter_mm: f64,
    /// Wafer cost ($9,346 for 7 nm, paper ref. \[71\]).
    pub wafer_cost: Dollars,
    /// Defect density per mm² (0.0015, paper ref. \[71\]).
    pub defect_density: f64,
}

impl Default for DieCostModel {
    fn default() -> Self {
        DieCostModel {
            area_mm2: 19.0,
            wafer_diameter_mm: 300.0,
            wafer_cost: Dollars::new(9_346.0),
            defect_density: 0.0015,
        }
    }
}

impl DieCostModel {
    /// Gross dies per wafer (standard edge-corrected formula).
    pub fn dies_per_wafer(&self) -> f64 {
        let r = self.wafer_diameter_mm / 2.0;
        let a = self.area_mm2;
        core::f64::consts::PI * r * r / a
            - core::f64::consts::PI * self.wafer_diameter_mm / (2.0 * a).sqrt()
    }

    /// Die yield (Poisson model).
    pub fn yield_rate(&self) -> f64 {
        (-self.defect_density * self.area_mm2).exp()
    }

    /// Cost of one good die.
    pub fn die_cost(&self) -> Dollars {
        self.wafer_cost / (self.dies_per_wafer() * self.yield_rate())
    }
}

/// Non-recurring engineering breakdown for a 7 nm controller
/// (Figure 12 left; component scale from [49, 71]).
#[derive(Debug, Clone, Copy)]
pub struct NreBreakdown {
    /// Architecture/system engineering.
    pub system_nre: Dollars,
    /// Package design.
    pub package_design: Dollars,
    /// IP licensing (PCIe/CXL PHY, RISC-V, memory controllers).
    pub ip_licensing: Dollars,
    /// Front-end design labor.
    pub frontend_labor: Dollars,
    /// Back-end CAD tooling.
    pub backend_cad: Dollars,
    /// Back-end labor.
    pub backend_labor: Dollars,
    /// Mask set.
    pub mask: Dollars,
}

impl Default for NreBreakdown {
    fn default() -> Self {
        NreBreakdown {
            system_nre: Dollars::new(2.0e6),
            package_design: Dollars::new(0.8e6),
            ip_licensing: Dollars::new(7.5e6),
            frontend_labor: Dollars::new(5.2e6),
            backend_cad: Dollars::new(2.8e6),
            backend_labor: Dollars::new(4.0e6),
            mask: Dollars::new(3.0e6),
        }
    }
}

impl NreBreakdown {
    /// Total NRE.
    pub fn total(&self) -> Dollars {
        self.system_nre
            + self.package_design
            + self.ip_licensing
            + self.frontend_labor
            + self.backend_cad
            + self.backend_labor
            + self.mask
    }
}

/// Per-unit CXL controller cost at a production volume (Figure 12 right).
#[derive(Debug, Clone, Copy)]
pub struct ControllerCost {
    /// Good-die cost.
    pub die: Dollars,
    /// 2D packaging (29% of chip cost, paper ref. \[59\]).
    pub packaging: Dollars,
    /// Amortised NRE.
    pub nre: Dollars,
}

impl ControllerCost {
    /// Evaluates the cost model at `volume` units.
    pub fn at_volume(volume: f64) -> ControllerCost {
        let die = DieCostModel::default().die_cost();
        let packaging = die * 0.29;
        let nre = NreBreakdown::default().total() / volume;
        ControllerCost { die, packaging, nre }
    }

    /// Total per-unit cost.
    pub fn total(&self) -> Dollars {
        self.die + self.packaging + self.nre
    }
}

/// Hardware bill of materials (Table 6).
#[derive(Debug, Clone, Copy)]
pub struct HardwareCosts {
    /// Host CPU (Xeon Gold 6430).
    pub host_cpu: Dollars,
    /// Per A100 80 GB GPU (conservative 50%-margin-deducted price).
    pub a100: Dollars,
    /// 512 GB GDDR6-PIM (10× standard DRAM spot).
    pub pim_memory_512gb: Dollars,
    /// 96-lane 48-port CXL switch.
    pub cxl_switch: Dollars,
}

impl Default for HardwareCosts {
    fn default() -> Self {
        HardwareCosts {
            host_cpu: Dollars::new(2_128.0),
            a100: Dollars::new(10_000.0),
            pim_memory_512gb: Dollars::new(11_873.0),
            cxl_switch: Dollars::new(490.0),
        }
    }
}

impl HardwareCosts {
    /// Total GPU-system capex (Table 6: $42,128 for 4×A100 + CPU).
    pub fn gpu_system(&self, gpus: usize) -> Dollars {
        self.host_cpu + self.a100 * gpus as f64
    }

    /// Total CENT-system capex (Table 6: $14,873 for 32 devices).
    pub fn cent_system(&self, devices: usize, controller_volume: f64) -> Dollars {
        let controllers = ControllerCost::at_volume(controller_volume).total() * devices as f64;
        // PIM memory price scales with capacity relative to the 512 GB/32
        // device reference point.
        let memory = self.pim_memory_512gb * (devices as f64 / 32.0);
        self.host_cpu + memory + controllers + self.cxl_switch
    }
}

/// Electricity price (§6: $0.139/kWh).
pub const KWH_PRICE: f64 = 0.139;

/// Three-year total cost of ownership per hour.
#[derive(Debug, Clone, Copy)]
pub struct Tco {
    /// Hardware amortisation per hour.
    pub capex_per_hour: Dollars,
    /// Energy cost per hour.
    pub opex_per_hour: Dollars,
}

impl Tco {
    /// Owned-hardware TCO over three years at `avg_power`.
    pub fn owned(capex: Dollars, avg_power: Power) -> Tco {
        let hours = 3.0 * 365.0 * 24.0;
        Tco {
            capex_per_hour: capex / hours,
            opex_per_hour: Dollars::new(avg_power.as_watts() / 1000.0 * KWH_PRICE),
        }
    }

    /// Total per hour.
    pub fn per_hour(&self) -> Dollars {
        self.capex_per_hour + self.opex_per_hour
    }
}

/// Azure-style rental prices per hour (§6(b)).
pub mod rental {
    use cent_types::Dollars;

    /// 4×A100 80 GB instance.
    pub const GPU_4XA100_PER_HOUR: Dollars = Dollars::new(5.45);
    /// Host-CPU-only instance driving CENT devices (the devices themselves
    /// use the owned methodology, §6).
    pub const HOST_CPU_PER_HOUR: Dollars = Dollars::new(0.32);
}

/// Tokens per dollar at a given throughput and hourly cost.
pub fn tokens_per_dollar(tokens_per_s: f64, cost_per_hour: Dollars) -> f64 {
    tokens_per_s * 3600.0 / cost_per_hour.amount()
}

/// The swap-vs-recompute comparator behind the serving simulator's
/// spill-to-CXL KV tier.
///
/// When a replica's device KV pool is exhausted, an eviction victim's pages
/// can either be *recomputed* later (vLLM-style: the victim's whole context
/// streams back through the prefill front-end) or *swapped* to CXL host
/// memory and paged back before decode resumes (two bulk transfers over the
/// host link). Both costs are functions of the same quantity — the victim's
/// resident KV tokens — so the comparator reduces to
/// `round_trip_time(tokens)` vs `recompute_time(tokens, prefill_rate)`.
///
/// Times are integer picoseconds end to end, so the comparison is exact and
/// deterministic — a requirement for the tick engines' bit-identical
/// differential property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSwapCost {
    /// Bytes one KV-cache token occupies across every block the replica
    /// serves (`kv_bytes_per_token_per_block × layers` for a full-model
    /// pipeline replica).
    pub bytes_per_token: ByteSize,
    /// One-way link latency per transfer (the CXL switch hop).
    pub latency: Time,
    /// Effective bulk bandwidth of the host link.
    pub bandwidth: Bandwidth,
}

impl KvSwapCost {
    /// Builds the comparator from a CXL fabric's host-link parameters
    /// ([`FabricConfig::hop_latency`] / [`FabricConfig::host_bulk_bandwidth`]),
    /// so `transfer_time(tokens)` equals
    /// [`FabricConfig::host_transfer_time`] of the same payload.
    pub fn from_host_link(bytes_per_token: ByteSize, fabric: &FabricConfig) -> Self {
        KvSwapCost {
            bytes_per_token,
            latency: fabric.hop_latency(),
            bandwidth: fabric.host_bulk_bandwidth(),
        }
    }

    /// The paper's fabric (multicast switch, x16 host link) for a given
    /// per-token KV footprint.
    pub fn cent(bytes_per_token: ByteSize) -> Self {
        // Host-link parameters do not depend on the device count.
        Self::from_host_link(bytes_per_token, &FabricConfig::cent(1))
    }

    /// The same comparator with the host-link bandwidth scaled by
    /// `factor` — the degraded-link view of the fabric during a
    /// `HostLinkDegrade` fault window (`factor` < 1 slows transfers, so
    /// the cost-driven disposition shifts toward recompute).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_bandwidth_factor(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth factor must be positive");
        KvSwapCost { bandwidth: self.bandwidth.scale(factor), ..*self }
    }

    /// The same transfer model with `hops` extra switch traversals added to
    /// the per-transfer latency term — the cost of reaching a
    /// *switch-attached* resource (the shared KV pool of a disaggregated
    /// fleet) instead of the replica's own host port. A device→pool
    /// publish or pool→device claim crosses the PBR switch fabric once
    /// per hop on top of the base host-link hop; bandwidth is unchanged
    /// (the bulk path still runs at host-link rate).
    pub fn with_switch_hops(&self, hops: u32, fabric: &FabricConfig) -> Self {
        KvSwapCost { latency: self.latency + fabric.hop_latency().times(u64::from(hops)), ..*self }
    }

    /// Bytes `tokens` KV tokens occupy on the wire.
    pub fn bytes_for(&self, tokens: u64) -> ByteSize {
        ByteSize::bytes(self.bytes_per_token.as_bytes() * tokens)
    }

    /// One-way transfer time of `tokens` KV tokens (swap-out *or* swap-in).
    pub fn transfer_time(&self, tokens: u64) -> Time {
        self.latency + self.bytes_for(tokens).transfer_time(self.bandwidth)
    }

    /// Round-trip swap cost: pages out to host memory and back again before
    /// decode can resume (`2 × (latency + bytes/bandwidth)`).
    pub fn round_trip_time(&self, tokens: u64) -> Time {
        self.transfer_time(tokens).times(2)
    }

    /// Recompute cost: the victim's whole context (`tokens` = prompt +
    /// generated so far) re-prefills at the replica's prefill rate.
    pub fn recompute_time(&self, tokens: u64, prefill_tokens_per_s: f64) -> Time {
        Time::from_secs_f64(tokens as f64 / prefill_tokens_per_s)
    }

    /// The cost-driven eviction decision: `true` when the swap round trip is
    /// strictly cheaper than re-prefilling the same tokens.
    pub fn swap_is_cheaper(&self, tokens: u64, prefill_tokens_per_s: f64) -> bool {
        self.round_trip_time(tokens) < self.recompute_time(tokens, prefill_tokens_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_cost_matches_figure_12() {
        let m = DieCostModel::default();
        // ~3,500+ gross dies, ~97% yield, ≈ $2.7/die.
        assert!(m.dies_per_wafer() > 3_000.0);
        assert!(m.yield_rate() > 0.95);
        let die = m.die_cost().amount();
        assert!((2.0..4.0).contains(&die), "die ${die}");
    }

    #[test]
    fn controller_cost_at_3m_volume_is_about_12_dollars() {
        // Figure 12: "Volume: 3M, Cost: $11.9".
        let c = ControllerCost::at_volume(3.0e6);
        let total = c.total().amount();
        assert!((10.0..14.0).contains(&total), "controller ${total}");
    }

    #[test]
    fn nre_dominates_at_low_volume() {
        let low = ControllerCost::at_volume(100_000.0);
        assert!(low.nre.amount() > low.die.amount() * 10.0);
        let high = ControllerCost::at_volume(5.0e6);
        assert!(high.nre.amount() < high.die.amount() * 5.0);
    }

    #[test]
    fn table6_hardware_costs() {
        let hw = HardwareCosts::default();
        assert_eq!(hw.gpu_system(4).amount(), 42_128.0);
        let cent = hw.cent_system(32, 3.0e6).amount();
        // Table 6: $14,873.
        assert!((13_500.0..16_500.0).contains(&cent), "cent ${cent}");
    }

    #[test]
    fn table4_owned_tco() {
        let hw = HardwareCosts::default();
        // CENT: 27 active devices at ~32 W + idle + host ≈ 1.1 kW.
        let cent = Tco::owned(hw.cent_system(32, 3.0e6), Power::watts(1_100.0));
        let cent_hr = cent.per_hour().amount();
        assert!((0.6..0.9).contains(&cent_hr), "CENT ${cent_hr}/h (Table 4: 0.73)");
        // GPU: 4×A100 near 300 W TDP + host.
        let gpu = Tco::owned(hw.gpu_system(4), Power::watts(1_385.0));
        let gpu_hr = gpu.per_hour().amount();
        assert!((1.5..2.0).contains(&gpu_hr), "GPU ${gpu_hr}/h (Table 4: 1.76)");
    }

    #[test]
    fn swap_cost_matches_host_link_helper() {
        // Llama2-70B-class footprint: 4 KiB per token per block × 80 blocks.
        let per_token = ByteSize::kib(320);
        let fabric = FabricConfig::cent(32);
        let cost = KvSwapCost::from_host_link(per_token, &fabric);
        for tokens in [1u64, 600, 4096] {
            assert_eq!(
                cost.transfer_time(tokens),
                fabric.host_transfer_time(cost.bytes_for(tokens)),
                "{tokens} tokens"
            );
        }
        assert_eq!(cost.round_trip_time(4096), cost.transfer_time(4096).times(2));
    }

    #[test]
    fn bandwidth_factor_matches_degraded_fabric() {
        let per_token = ByteSize::kib(320);
        let fabric = FabricConfig::cent(32);
        let scaled = KvSwapCost::from_host_link(per_token, &fabric).with_bandwidth_factor(0.25);
        let rebuilt = KvSwapCost::from_host_link(per_token, &fabric.with_host_link_factor(0.25));
        for tokens in [1u64, 600, 4096] {
            let a = scaled.transfer_time(tokens).as_secs();
            let b = rebuilt.transfer_time(tokens).as_secs();
            assert!((a - b).abs() <= 1e-9 * a.max(1e-12), "{tokens} tokens: {a} vs {b}");
        }
        // A degraded link flips the cost-driven disposition toward
        // recompute: at 40k tok/s prefill the healthy round trip (~46 ms
        // for 4096 tokens) beats the ~102 ms recompute, the 4×-slower
        // one (~182 ms) loses to it.
        let healthy = KvSwapCost::cent(per_token);
        assert!(healthy.swap_is_cheaper(4096, 40_000.0));
        assert!(!healthy.with_bandwidth_factor(0.25).swap_is_cheaper(4096, 40_000.0));
    }

    #[test]
    fn switch_hops_add_pure_latency() {
        let per_token = ByteSize::kib(320);
        let fabric = FabricConfig::cent(32);
        let base = KvSwapCost::from_host_link(per_token, &fabric);
        let pooled = base.with_switch_hops(2, &fabric);
        assert_eq!(pooled.bandwidth, base.bandwidth, "bulk rate is unchanged");
        assert_eq!(pooled.latency, base.latency + fabric.hop_latency().times(2));
        for tokens in [1u64, 600, 4096] {
            assert_eq!(
                pooled.transfer_time(tokens),
                base.transfer_time(tokens) + fabric.hop_latency().times(2),
                "{tokens} tokens"
            );
        }
        assert_eq!(base.with_switch_hops(0, &fabric), base);
    }

    #[test]
    fn comparator_flips_with_prefill_rate() {
        // 4096 tokens × 320 KiB ≈ 1.25 GiB; round trip over ~58.9 GB/s
        // effective ≈ 45.6 ms. At 1000 tok/s prefill the recompute costs
        // 4.1 s → swap wins; at 1M tok/s it costs 4.1 ms → recompute wins.
        let cost = KvSwapCost::cent(ByteSize::kib(320));
        assert!(cost.swap_is_cheaper(4096, 1_000.0));
        assert!(!cost.swap_is_cheaper(4096, 1_000_000.0));
        // Tiny contexts are latency-dominated but still strictly ordered.
        assert!(cost.round_trip_time(1) > Time::ZERO);
    }

    #[test]
    fn tokens_per_dollar_ratio() {
        // Fig 13c flavour: CENT 2.3× throughput at 2.5× lower cost ≈ 5.2×.
        let cent = tokens_per_dollar(2_300.0, Dollars::new(0.73));
        let gpu = tokens_per_dollar(1_000.0, Dollars::new(1.76));
        let ratio = cent / gpu;
        assert!((4.0..7.0).contains(&ratio), "ratio {ratio}");
    }
}
