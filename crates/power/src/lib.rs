//! Activity-based power and energy model for CENT (§6, §7.2).
//!
//! Follows the paper's methodology: DRAM core power from per-command
//! energies (Micron power-calculator style), MAC operations at 3× the
//! current of a gapless read, 314.6 mW per two-channel memory controller,
//! 250 mW per BOOM core, and the Table 5 CXL-controller figures. Energy
//! constants are calibrated so a 32-device Llama2-70B pipeline lands near
//! the paper's reported 32.4 W per device with 54.5% in PIM operations and
//! 30.2% in activate/precharge (§7.2) — the calibration is documented in
//! DESIGN.md.

#![forbid(unsafe_code)]

use cent_dram::ActivityCounters;
use cent_pnm::PnmStats;
use cent_types::consts::{CHANNELS_PER_DEVICE, PIM_CONTROLLERS_PER_DEVICE, PNM_RISCV_CORES};
use cent_types::{Energy, Power, Time};

/// Per-event DRAM energies for the 8 Gb GDDR6 C-die class parts.
///
/// Derived from IDD currents at 1.35 V scaled to per-command charge;
/// the MAC beat is 3× the read-beat energy per the paper's assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyModel {
    /// One single-bank activate (row charge).
    pub act: Energy,
    /// One precharge.
    pub pre: Energy,
    /// One 256-bit read beat.
    pub read_beat: Energy,
    /// One 256-bit write beat.
    pub write_beat: Energy,
    /// One per-bank MAC beat (3× gapless read).
    pub mac_beat: Energy,
    /// One all-bank refresh.
    pub refresh: Energy,
    /// Background power per channel (clocking, DLL, leakage).
    pub background_per_channel: Power,
}

impl Default for DramEnergyModel {
    fn default() -> Self {
        // §7.2: a MAC_ABK beat costs 0.6 pJ/bit → 153.6 pJ per 256-bit
        // beat; the gapless read is one third of that (near-bank access,
        // no I/O drivers).
        let read = Energy::pj(51.2);
        DramEnergyModel {
            act: Energy::nj(3.5),
            pre: Energy::nj(1.9),
            read_beat: read,
            write_beat: read * 1.05,
            mac_beat: read * 3.0,
            refresh: Energy::nj(28.0),
            background_per_channel: Power::mw(30.0),
        }
    }
}

impl DramEnergyModel {
    /// Energy of an activity window.
    pub fn energy(&self, a: &ActivityCounters, elapsed: Time) -> Energy {
        self.act * a.acts as f64
            + self.pre * a.pres as f64
            + self.read_beat * (a.reads as f64)
            + self.write_beat * (a.writes as f64)
            + self.mac_beat * a.mac_beats as f64
            // An EW_MUL beat reads two banks and writes one per group.
            + (self.read_beat * 2.0 + self.write_beat) * a.ewmul_beats as f64
            + self.refresh * a.refreshes as f64
            + (self.background_per_channel * CHANNELS_PER_DEVICE as f64).for_duration(elapsed)
    }
}

/// Static power of the non-DRAM device components (§6 constants + Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerPowerModel {
    /// Per two-channel GDDR6 memory controller.
    pub memory_controller: Power,
    /// Per BOOM RISC-V core (peak; scaled by utilization).
    pub riscv_core: Power,
    /// CXL controller custom logic (Table 5 total, scaled 28 nm → 7 nm).
    pub cxl_logic: Power,
    /// PCIe/CXL PHY.
    pub phy: Power,
}

impl Default for ControllerPowerModel {
    fn default() -> Self {
        ControllerPowerModel {
            memory_controller: Power::mw(314.6),
            riscv_core: Power::mw(250.0),
            // Table 5: 1.06 W at 28 nm; ~0.5× at 7 nm for the same logic.
            cxl_logic: Power::mw(530.0),
            phy: Power::mw(700.0),
        }
    }
}

/// Power/energy report for one device over a window.
#[derive(Debug, Clone, Copy)]
pub struct DevicePower {
    /// Average total power.
    pub total: Power,
    /// DRAM array share (PIM ops + ACT/PRE + background).
    pub dram: Power,
    /// Share of total in MAC/EW PIM operations.
    pub pim_op_fraction: f64,
    /// Share of total in activate/precharge.
    pub act_pre_fraction: f64,
    /// Energy over the window.
    pub energy: Energy,
}

/// Computes device power from simulated activity over `elapsed`.
pub fn device_power(
    dram_model: &DramEnergyModel,
    ctrl: &ControllerPowerModel,
    dram: &ActivityCounters,
    pnm: &PnmStats,
    elapsed: Time,
) -> DevicePower {
    let dram_energy = dram_model.energy(dram, elapsed);
    let mac_energy = dram_model.mac_beat * dram.mac_beats as f64
        + (dram_model.read_beat * 2.0 + dram_model.write_beat) * dram.ewmul_beats as f64;
    let act_pre_energy = dram_model.act * dram.acts as f64 + dram_model.pre * dram.pres as f64;

    // RISC-V cores: 250 mW when running; utilization from retired
    // instructions at ~2 IPC, 2 GHz.
    let riscv_busy = pnm.riscv_instructions as f64 / (2.0 * 2.0e9);
    let riscv_util = (riscv_busy / elapsed.as_secs()).min(1.0);
    let static_power = ctrl.memory_controller * PIM_CONTROLLERS_PER_DEVICE as f64
        + ctrl.riscv_core * PNM_RISCV_CORES as f64 * riscv_util
        + ctrl.cxl_logic
        + ctrl.phy;

    let total_energy = dram_energy + static_power.for_duration(elapsed);
    let total = total_energy.over(elapsed);
    DevicePower {
        total,
        dram: dram_energy.over(elapsed),
        pim_op_fraction: mac_energy.as_joules() / total_energy.as_joules(),
        act_pre_fraction: act_pre_energy.as_joules() / total_energy.as_joules(),
        energy: total_energy,
    }
}

/// Host CPU power while driving a CENT system (Xeon Gold 6430 under a
/// dispatch-only load).
pub const HOST_CPU_POWER: Power = Power::watts(185.0);

/// Tokens per joule for a system producing `tokens_per_s` at `system_power`.
pub fn tokens_per_joule(tokens_per_s: f64, system_power: Power) -> f64 {
    tokens_per_s / system_power.as_watts()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_activity(seconds: f64) -> ActivityCounters {
        // A decode-heavy window at ~22% of the peak per-bank beat rate —
        // the duty cycle implied by the paper's 32.4 W / 54.5%-PIM budget
        // once row-cycle overheads and non-FC phases are accounted.
        let beats_per_s = 0.22 * 32.0 * 16.0 * 1.0e9;
        let beats = (beats_per_s * seconds) as u64;
        let rows = beats / 64 / 16;
        ActivityCounters {
            acts: rows * 16,
            pres: rows * 16,
            mac_beats: beats,
            reads: beats / 100,
            writes: beats / 100,
            ..Default::default()
        }
    }

    #[test]
    fn device_power_lands_near_paper_value() {
        // §7.2: 32.4 W per device average, 54.5% PIM ops, 30.2% ACT/PRE.
        let window = Time::from_secs_f64(0.01);
        let a = steady_activity(0.01);
        let p = device_power(
            &DramEnergyModel::default(),
            &ControllerPowerModel::default(),
            &a,
            &PnmStats::default(),
            window,
        );
        let watts = p.total.as_watts();
        assert!((20.0..48.0).contains(&watts), "device power {watts} W");
        assert!((0.35..0.70).contains(&p.pim_op_fraction), "pim {:.3}", p.pim_op_fraction);
        assert!((0.10..0.45).contains(&p.act_pre_fraction), "actpre {:.3}", p.act_pre_fraction);
    }

    #[test]
    fn idle_device_draws_background_only() {
        let window = Time::from_secs_f64(0.001);
        let p = device_power(
            &DramEnergyModel::default(),
            &ControllerPowerModel::default(),
            &ActivityCounters::default(),
            &PnmStats::default(),
            window,
        );
        // Background + controllers + PHY: several watts, far below active.
        assert!(p.total.as_watts() > 5.0 && p.total.as_watts() < 15.0, "{}", p.total);
    }

    #[test]
    fn mac_energy_is_three_times_read() {
        let m = DramEnergyModel::default();
        assert!((m.mac_beat.as_joules() / m.read_beat.as_joules() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tokens_per_joule_scales_inversely_with_power() {
        let a = tokens_per_joule(1000.0, Power::watts(1000.0));
        let b = tokens_per_joule(1000.0, Power::watts(500.0));
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
