//! Criterion microbenchmarks for the simulator substrates: how fast the
//! simulator itself runs (not the modelled hardware).
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cent_compiler::{compile_decode_step, BlockPlacement};
use cent_dram::{DramCommand, PimChannelTiming};
use cent_isa::{decode, encode};
use cent_model::{reference_block, BlockWeights, KvCache, ModelConfig};
use cent_sim::simulate_block_step;
use cent_types::{ChannelId, ColAddr, RowAddr};

fn bench_dram_timing(c: &mut Criterion) {
    c.bench_function("dram_row_of_mac_beats", |b| {
        b.iter(|| {
            let mut ch = PimChannelTiming::new();
            ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
            for col in 0..64 {
                ch.issue(DramCommand::MacAb { col: ColAddr(col) }).unwrap();
            }
            ch.issue(DramCommand::PreAb).unwrap();
            black_box(ch.busy_until())
        })
    });
}

fn bench_isa_roundtrip(c: &mut Criterion) {
    let cfg = ModelConfig::tiny();
    let placement = BlockPlacement::plan(&cfg, vec![ChannelId(0)]).unwrap();
    let step = compile_decode_step(&placement, 7).unwrap();
    c.bench_function("isa_encode_decode_block_trace", |b| {
        b.iter(|| {
            for inst in &step.trace {
                let word = encode(inst);
                black_box(decode(&word).unwrap());
            }
        })
    });
}

fn bench_block_compile(c: &mut Criterion) {
    let cfg = ModelConfig::tiny();
    let placement = BlockPlacement::plan(&cfg, vec![ChannelId(0), ChannelId(1)]).unwrap();
    c.bench_function("compile_tiny_block_step", |b| {
        b.iter(|| black_box(compile_decode_step(&placement, 31).unwrap()))
    });
}

fn bench_block_simulation(c: &mut Criterion) {
    let cfg = ModelConfig::tiny();
    c.bench_function("simulate_tiny_block_step", |b| {
        b.iter(|| black_box(simulate_block_step(&cfg, 2, 31).unwrap()))
    });
}

fn bench_reference_block(c: &mut Criterion) {
    let cfg = ModelConfig::tiny();
    let w = BlockWeights::random(&cfg, 1);
    let x = vec![0.01f32; cfg.hidden];
    c.bench_function("reference_block_f32", |b| {
        b.iter(|| {
            let mut cache = KvCache::new();
            black_box(reference_block(&cfg, &w, &x, &mut cache, 0))
        })
    });
}

criterion_group!(
    benches,
    bench_dram_timing,
    bench_isa_roundtrip,
    bench_block_compile,
    bench_block_simulation,
    bench_reference_block
);
criterion_main!(benches);
