//! Figure 1: Llama2-70B inference throughput and memory requirement on
//! 4×A100 80GB versus batch size, for 4K/8K/16K/32K contexts.
use cent_baselines::GpuSystem;
use cent_bench::Report;
use cent_model::ModelConfig;

fn main() {
    let sys = GpuSystem::a100x(4);
    let mut report = Report::new(
        "fig01",
        "GPU throughput vs batch size and context",
        "throughput plateaus ~600-800 tok/s at 4K; saturation batch falls from 128 (4K) to 8-16 (32K); memory crosses 320 GB",
    );
    for ctx in [4096usize, 8192, 16384, 32768] {
        let cfg = ModelConfig::llama2_70b_long(ctx);
        let mut tput = Vec::new();
        let mut mem = Vec::new();
        for exp in 2..=8 {
            let batch = 1usize << exp;
            let label = format!("ctx{}K b{batch}", ctx / 1024);
            let feasible = batch.min(sys.max_batch(&cfg, ctx).max(1));
            tput.push((label.clone(), sys.decode_tokens_per_s(&cfg, feasible, ctx)));
            mem.push((label, cfg.memory_required(batch, ctx).as_gib()));
        }
        report.push_series(&format!("{}K throughput", ctx / 1024), "tokens/s", &tput);
        report.push_series(&format!("{}K memory", ctx / 1024), "GiB", &mem);
    }
    report.emit();
}
