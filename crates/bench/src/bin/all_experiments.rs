//! Runs every experiment binary's logic in sequence (synchronously), so one
//! command regenerates all figures and tables into `results/`.
use std::process::Command;

fn main() {
    let bins = [
        "table1_hw_comparison",
        "table4_system_config",
        "table5_cxl_controller",
        "table6_hardware_costs",
        "fig01_gpu_batching",
        "fig02_gpu_motivation",
        "fig12_controller_cost",
        "fig17_vs_cxlpnm",
        "fig18_vs_gpu_pim",
        "ablations",
        "fig13_cent_vs_gpu",
        "fig14_analysis",
        "fig15_power_energy",
        "fig19_scalability",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n──────── running {bin} ────────");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("{bin} failed to start: {e}"),
        }
    }
}
