//! Simulator self-benchmark: the phase-bucketed tick engine vs the
//! retained per-token reference loop — the repo's perf-trajectory
//! artifact.
//!
//! For each shape, the same trace is served by both [`TickEngine`]s and
//! the bin records wall-clock time, simulated tokens per wall-second and
//! heap events (pushes + pops) per generated token, asserting along the
//! way that the two engines' `ServingReport`s are bit-identical — perf
//! numbers for diverging simulations would be meaningless. Results print
//! as a table and land in `results/BENCH_serving_sim.json` (schema
//! documented in the README's Performance section).
//!
//! Run with `cargo run --release --bin sim_perf`; pass `--smoke` for the
//! CI mode, which uses a small synthetic shape, skips the slow planner
//! sweeps, and fails if the bucketed engine does not beat the reference on
//! heap traffic (deterministic) and wall-clock (with noise slack).

use std::time::Instant;

use cent_bench::results_dir;
use cent_model::ModelConfig;
use cent_serving::{
    ArrivalProcess, KvBudget, KvMode, LengthSampler, RequestSpec, SchedulerConfig, ServeOptions,
    ServingSystem, SimStats, TickEngine, Workload,
};
use cent_types::Time;

/// One benchmark shape: a deployment plus a saturated trace to serve.
struct Shape {
    name: &'static str,
    system: ServingSystem,
    trace: Vec<RequestSpec>,
    offered_qps: f64,
    options: ServeOptions,
}

/// Timing + event-core counters of one engine on one shape.
struct Measurement {
    wall_s: f64,
    stats: SimStats,
}

/// Runs the shape `repeats` times and keeps the *minimum* wall time (the
/// run least disturbed by scheduler noise — the simulation itself is
/// deterministic, so stats and report are identical across repeats).
fn measure(
    shape: &Shape,
    engine: TickEngine,
    repeats: u32,
) -> (Measurement, cent_serving::ServingReport) {
    let mut best: Option<(Measurement, cent_serving::ServingReport)> = None;
    for _ in 0..repeats.max(1) {
        let options = shape.options.clone().with_engine(engine);
        let start = Instant::now();
        let (report, stats) =
            shape.system.serve_trace_instrumented(&shape.trace, shape.offered_qps, options);
        let wall_s = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(m, _)| wall_s < m.wall_s) {
            best = Some((Measurement { wall_s, stats }, report));
        }
    }
    best.expect("at least one repeat ran")
}

/// A synthetic 1-replica × `slots` system mirroring `from_parts` test rigs:
/// 1 ms token cadence, fast prefill, ample KV unless a budget is given.
fn synthetic(slots: usize, kv_tokens: u64, kv: KvMode) -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: slots,
            kv_budget: KvBudget::tokens(kv_tokens),
            kv,
        },
        Time::from_us(1000),
        50_000.0,
        slots as f64 * 1000.0,
    )
}

fn smoke_shapes() -> Vec<Shape> {
    // 8 slots/replica (the acceptance shape floor), saturated fixed mix.
    let system = synthetic(8, u64::MAX / 2, KvMode::FullReservation);
    let w = Workload {
        arrivals: ArrivalProcess::Poisson { rate_qps: 3.0 * system.capacity_qps(32, 256) },
        lengths: LengthSampler::Fixed { prompt: 32, decode: 256 },
        seed: 0xCE27,
    };
    let trace = w.generate(Time::from_secs_f64(30.0), 4096);
    vec![Shape {
        name: "smoke-8slot-saturated",
        system,
        trace,
        offered_qps: w.arrivals.mean_qps(),
        options: ServeOptions::default(),
    }]
}

fn full_shapes() -> Vec<Shape> {
    let mut shapes = smoke_shapes();
    // The paper's serving deployment: Llama2-7B pipeline-parallel on 8
    // devices (1 replica × 32 slots), saturated chatbot mix — the shape
    // the load/policy sweeps hammer.
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let rate = 1.2 * system.capacity_qps(512, 3584);
    let w = Workload::chatbot(rate, 0xCE27);
    let trace = w.generate(Time::from_secs_f64(3600.0), 4096);
    shapes.push(Shape {
        name: "llama2_7b-pp8-chatbot-1.2x",
        system: system.clone(),
        trace: trace.clone(),
        offered_qps: rate,
        options: ServeOptions::default(),
    });
    // The same deployment (and the same trace) under KV pressure with
    // token-granular accounting: preemption/recompute churns the buckets,
    // the engine's worst case.
    let slots = system.total_slots() / system.replicas();
    let constrained = system.with_kv_budget(KvBudget::tokens((slots as u64 * 4096).div_ceil(3)));
    shapes.push(Shape {
        name: "llama2_7b-pp8-chatbot-kv-managed",
        system: constrained,
        trace,
        offered_qps: rate,
        options: ServeOptions::token_granular(),
    });
    shapes
}

fn json_engine(m: &Measurement) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"sim_tokens_per_wall_s\": {:.1}, \"heap_pushes\": {}, \
         \"heap_pops\": {}, \"tick_events\": {}, \"heap_events_per_token\": {:.4}}}",
        m.wall_s,
        if m.wall_s > 0.0 { m.stats.tokens as f64 / m.wall_s } else { 0.0 },
        m.stats.heap_pushes,
        m.stats.heap_pops,
        m.stats.tick_events,
        m.stats.heap_events_per_token(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shapes = if smoke { smoke_shapes() } else { full_shapes() };

    println!(
        "{:>32} {:>11} {:>11} {:>9} {:>11} {:>11} {:>9}",
        "shape", "ref wall", "bkt wall", "speedup", "ref hp/tok", "bkt hp/tok", "hp ratio"
    );
    let mut rows = Vec::new();
    // The smoke gate compares single-shot wall clocks on a shared CI
    // runner; take the best of three so one scheduler stall cannot flip
    // the not-slower assert.
    let repeats = if smoke { 3 } else { 1 };
    for shape in &shapes {
        let (reference, ref_report) = measure(shape, TickEngine::PerTokenReference, repeats);
        let (bucketed, bkt_report) = measure(shape, TickEngine::PhaseBucketed, repeats);
        assert_eq!(
            ref_report, bkt_report,
            "{}: engines must report identically before perf means anything",
            shape.name
        );
        let speedup = reference.wall_s / bucketed.wall_s.max(1e-9);
        let heap_ratio = reference.stats.heap_events_per_token()
            / bucketed.stats.heap_events_per_token().max(1e-9);
        println!(
            "{:>32} {:>10.3}s {:>10.3}s {:>8.2}x {:>11.3} {:>11.3} {:>8.2}x",
            shape.name,
            reference.wall_s,
            bucketed.wall_s,
            speedup,
            reference.stats.heap_events_per_token(),
            bucketed.stats.heap_events_per_token(),
            heap_ratio,
        );
        let slots = shape.system.slots_per_replica();
        rows.push(format!(
            "    {{\"name\": \"{}\", \"replicas\": {}, \"slots_per_replica\": {}, \
             \"sim_tokens\": {}, \"preemptions\": {},\n     \"reference\": {},\n     \
             \"bucketed\": {},\n     \"wall_speedup\": {:.3}, \"heap_event_ratio\": {:.3}, \
             \"reports_identical\": true}}",
            shape.name,
            shape.system.replicas(),
            slots,
            bucketed.stats.tokens,
            bkt_report.preemptions,
            json_engine(&reference),
            json_engine(&bucketed),
            speedup,
            heap_ratio,
        ));
        // The heap-event ratio is deterministic: on any shape with >= 8
        // slots per replica the bucketed engine must batch at least 5x.
        if slots >= 8 {
            assert!(
                heap_ratio >= 5.0,
                "{}: heap-event ratio {heap_ratio:.2} < 5x on {slots} slots/replica",
                shape.name
            );
        }
        // Wall-clock is noisy in CI; "not slower" with 25% slack in smoke
        // mode, while the full run reports the real speedup.
        if smoke {
            assert!(
                bucketed.wall_s <= 1.25 * reference.wall_s,
                "{}: bucketed engine slower than reference ({:.3}s vs {:.3}s)",
                shape.name,
                bucketed.wall_s,
                reference.wall_s
            );
        }
    }

    let json = format!(
        "{{\n  \"id\": \"BENCH_serving_sim\",\n  \"mode\": \"{}\",\n  \"shapes\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serving_sim.json");
    std::fs::write(&path, json).expect("writing BENCH_serving_sim.json");
    println!("\nwrote {}", path.display());
}
