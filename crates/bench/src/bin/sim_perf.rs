//! Simulator self-benchmark: the three serving event cores — the
//! span-fast-forward engine, the phase-bucketed tick engine and the
//! retained per-token reference loop — measured side by side; the repo's
//! perf-trajectory artifact.
//!
//! For each shape, the same trace is served by every selected
//! [`TickEngine`] and the bin records wall-clock time, simulated tokens
//! per wall-second, heap events (pushes + pops) per generated token and
//! heap allocations per token, asserting along the way that all engines'
//! `ServingReport`s are bit-identical — perf numbers for diverging
//! simulations would be meaningless. Results print as a table and land in
//! `results/BENCH_serving_sim.json` (schema documented in the README's
//! Performance section).
//!
//! Run with `cargo run --release --bin sim_perf`; pass `--smoke` for the
//! CI mode, which uses small synthetic shapes (one clean, one churning the
//! swap-to-CXL spill tier, one multi-replica under token-granular
//! pressure), skips the slow planner sweeps, and fails if the fast engines
//! do not beat the reference on heap traffic (deterministic) and
//! wall-clock (with noise slack). Both modes end with a cluster shape —
//! a 64-group fleet of the paper's PP/8 deployment under a diurnal
//! chatbot load — timing the epoch-driven fleet driver against per-group
//! reference replays and asserting the merged `FleetReport` is
//! bit-identical across worker-thread counts. `--engines all` (the default) runs the
//! full three-engine cross-check in one process; a comma list (e.g.
//! `--engines bucketed,span`) restricts the measured set — the reference
//! loop is always included as the ratio baseline. A
//! `cluster-disagg-4p4d-sharegpt` row times the disaggregated
//! prefill/decode driver (shared-pool handoffs, chunked prefill) against
//! the colocated per-token replay of the same trace, and a closing
//! `cluster-disagg-chaos` row reruns the split fleet under a seeded
//! disagg-aware chaos schedule — decode-weighted crashes, pool-link
//! brownouts, warm recovery, bounded retries, admission shedding — to
//! keep the survivable-disaggregation path on the perf gate.
//!
//! The process installs a counting global allocator: after each measured
//! run the bin asserts the fast engines allocate (amortised) nothing on
//! the per-token hot path — preemption victims and tick snapshots land in
//! run-owned scratch buffers, so steady-state allocations scale with
//! admissions, not tokens.
//!
//! Pass `--check-against <path>` to gate against a committed baseline
//! (`results/BENCH_serving_sim_baseline.json`): the run fails if any
//! baseline `(shape, engine)` row regresses by more than 20% on heap
//! events per token (deterministic) or on the reference→engine wall-clock
//! speedup (the machine-normalized wall-clock metric — absolute seconds
//! are not comparable across runners, the engines' ratio on the same
//! machine is).

// The counting global allocator below must implement the unsafe
// `GlobalAlloc` trait; this is the workspace's one sanctioned use of
// `unsafe` (every library crate carries `#![forbid(unsafe_code)]`).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cent_bench::results_dir;
use cent_cluster::{
    simulate_fleet_disagg, simulate_fleet_instrumented, AdmissionPolicy, ChaosRates, DisaggConfig,
    FaultPlan, FleetOptions, PowerOfTwoChoices, RecoveryMode, RetryPolicy,
};
use cent_cost::KvSwapCost;
use cent_cxl::FabricConfig;
use cent_model::ModelConfig;
use cent_serving::{
    ArrivalProcess, ClassMix, KvBudget, KvMode, KvSpillConfig, LengthSampler, LoadCurve,
    RequestSpec, SchedulerConfig, ServeOptions, ServingSystem, SimStats, TickEngine, Workload,
};
use cent_types::{ByteSize, Time};

/// Counts heap allocations so the bench can verify the engines' no-alloc
/// steady state (scratch buffers are reused; the hot path never allocates).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One benchmark shape: a deployment plus a saturated trace to serve.
struct Shape {
    name: &'static str,
    system: ServingSystem,
    trace: Vec<RequestSpec>,
    offered_qps: f64,
    options: ServeOptions,
}

/// Timing + event-core counters of one engine on one shape.
struct Measurement {
    wall_s: f64,
    stats: SimStats,
    /// Heap allocations during the fastest repeat's serve call.
    allocations: u64,
}

impl Measurement {
    fn allocations_per_token(&self) -> f64 {
        if self.stats.tokens == 0 {
            return 0.0;
        }
        self.allocations as f64 / self.stats.tokens as f64
    }
}

/// Runs the shape `repeats` times and keeps the *minimum* wall time (the
/// run least disturbed by scheduler noise — the simulation itself is
/// deterministic, so stats and report are identical across repeats).
fn measure(
    shape: &Shape,
    engine: TickEngine,
    repeats: u32,
) -> (Measurement, cent_serving::ServingReport) {
    let mut best: Option<(Measurement, cent_serving::ServingReport)> = None;
    for _ in 0..repeats.max(1) {
        let options = shape.options.clone().with_engine(engine);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        let (report, stats) =
            shape.system.serve_trace_instrumented(&shape.trace, shape.offered_qps, options);
        let wall_s = start.elapsed().as_secs_f64();
        let allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
        if best.as_ref().is_none_or(|(m, _)| wall_s < m.wall_s) {
            best = Some((Measurement { wall_s, stats, allocations }, report));
        }
    }
    best.expect("at least one repeat ran")
}

/// A synthetic `replicas × slots` system mirroring `from_parts` test rigs:
/// 1 ms token cadence, fast prefill, ample KV unless a budget is given.
fn synthetic(replicas: usize, slots: usize, kv_tokens: u64, kv: KvMode) -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas,
            slots_per_replica: slots,
            kv_budget: KvBudget::tokens(kv_tokens),
            kv,
        },
        Time::from_us(1000),
        50_000.0,
        (replicas * slots) as f64 * 1000.0,
    )
}

fn smoke_shapes() -> Vec<Shape> {
    // 8 slots/replica (the acceptance shape floor), saturated fixed mix.
    let system = synthetic(1, 8, u64::MAX / 2, KvMode::FullReservation);
    let w = Workload {
        arrivals: ArrivalProcess::Poisson { rate_qps: 3.0 * system.capacity_qps(32, 256) },
        lengths: LengthSampler::Fixed { prompt: 32, decode: 256 },
        seed: 0xCE27,
        classes: ClassMix::default(),
    };
    let trace = w.generate(Time::from_secs_f64(30.0), 4096);
    let mut shapes = vec![Shape {
        name: "smoke-8slot-saturated",
        system,
        trace: trace.clone(),
        offered_qps: w.arrivals.mean_qps(),
        options: ServeOptions::default(),
    }];
    // The same trace against a KV-starved pool with the cost-driven
    // swap-to-CXL tier: eviction, page-out/page-in serialization and the
    // per-victim comparator all ride the perf gate too.
    let starved = synthetic(1, 8, 8 * (32 + 256) / 3, KvMode::token_granular());
    let spill =
        KvSpillConfig::cost_driven(4 * 8 * (32 + 256), KvSwapCost::cent(ByteSize::kib(128)));
    shapes.push(Shape {
        name: "smoke-8slot-kv-swap",
        system: starved,
        trace,
        offered_qps: w.arrivals.mean_qps(),
        options: ServeOptions::token_granular().with_spill(spill),
    });
    // Multi-replica deployment (4 replicas × PP/8 slots) under
    // token-granular KV pressure: the span engine solves an exhaustion
    // forecast per replica and folds four replicas' occupancy deltas into
    // one integral update per event; recompute-only keeps the churn
    // deterministic without host-pool contention.
    let multi = synthetic(4, 8, 8 * (32 + 256) * 2 / 3, KvMode::token_granular());
    let w = Workload {
        arrivals: ArrivalProcess::Poisson { rate_qps: 3.0 * multi.capacity_qps(32, 256) },
        lengths: LengthSampler::Fixed { prompt: 32, decode: 256 },
        seed: 0xCE28,
        classes: ClassMix::default(),
    };
    let trace = w.generate(Time::from_secs_f64(20.0), 4096);
    shapes.push(Shape {
        name: "smoke-4x8-multi-replica-kv",
        system: multi,
        trace,
        offered_qps: w.arrivals.mean_qps(),
        options: ServeOptions::token_granular(),
    });
    shapes
}

fn full_shapes() -> Vec<Shape> {
    let mut shapes = smoke_shapes();
    // The paper's serving deployment: Llama2-7B pipeline-parallel on 8
    // devices (1 replica × 32 slots), saturated chatbot mix — the shape
    // the load/policy sweeps hammer.
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let rate = 1.2 * system.capacity_qps(512, 3584);
    let w = Workload::chatbot(rate, 0xCE27);
    let trace = w.generate(Time::from_secs_f64(3600.0), 4096);
    shapes.push(Shape {
        name: "llama2_7b-pp8-chatbot-1.2x",
        system: system.clone(),
        trace: trace.clone(),
        offered_qps: rate,
        options: ServeOptions::default(),
    });
    // The same deployment (and the same trace) under KV pressure with
    // token-granular accounting: preemption/recompute churns the buckets,
    // the engine's worst case.
    let slots = system.total_slots() / system.replicas();
    let constrained = system.with_kv_budget(KvBudget::tokens((slots as u64 * 4096).div_ceil(3)));
    shapes.push(Shape {
        name: "llama2_7b-pp8-chatbot-kv-managed",
        system: constrained.clone(),
        trace: trace.clone(),
        offered_qps: rate,
        options: ServeOptions::token_granular(),
    });
    // The same KV-pressured point with the cost-driven swap-to-CXL tier
    // (host pool for 2× the device budget, the deployment's own link/cost
    // model): the spill machinery's event cost shows up next to recompute's.
    let spill = KvSpillConfig::cost_driven(2 * slots as u64 * 4096, constrained.swap_cost());
    shapes.push(Shape {
        name: "llama2_7b-pp8-chatbot-kv-swap",
        system: constrained,
        trace,
        offered_qps: rate,
        options: ServeOptions::token_granular().with_spill(spill),
    });
    shapes
}

/// The fleet smoke shape: a 64-group cluster of the paper's PP/8
/// deployment under a diurnal chatbot load, routed by seeded power-of-two
/// choices. The timed pair is (a) the epoch-driven fleet driver —
/// `GroupSim`'s incremental span engine inside `simulate_fleet` — and
/// (b) the per-token reference loop replaying each group's routed
/// sub-trace, so the baseline's `span_wall_speedup` row covers the fleet
/// path end to end. Along the way the fleet report is asserted
/// bit-identical across 1 vs 2 worker threads and every group's
/// incremental report bit-identical to its batch reference run.
///
/// A second row — `cluster-crash-recovery` — reruns the same trace under
/// a seeded [`FaultPlan::chaos`] schedule with a bounded retry policy:
/// crashes orphan in-flight work onto survivors, degradation windows
/// shift the spill cost model, and the driver still must stay epochal.
/// The row asserts thread-count invariance *under faults*, the
/// `completed + rejected + dropped = offered` conservation invariant,
/// that availability was actually dented and retries engaged, and rides
/// the same `--check-against` gate (its reference is the healthy
/// per-token replay, so the speedup row catches a fault-path slowdown).
fn measure_cluster(smoke: bool) -> (Vec<String>, Vec<GateRow>) {
    const GROUPS: usize = 64;
    let name = "cluster-64xpp8-chatbot-diurnal";
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let horizon_s = if smoke { 60.0 } else { 600.0 };
    let rate = 0.9 * GROUPS as f64 * system.capacity_qps(512, 3584);
    let curve = LoadCurve::diurnal(horizon_s, 0.5, 1.5);
    let w = Workload::chatbot(rate, 0xCE29);
    let trace = w.generate_modulated(Time::from_secs_f64(horizon_s), 4096, &curve, 7);
    let opts = FleetOptions::new(GROUPS).with_epoch(Time::from_secs_f64(0.25));

    let fleet_run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(0xD1CE);
        let opts = opts.clone().with_threads(threads);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        let fleet = simulate_fleet_instrumented(&system, &trace, rate, &mut router, &opts);
        let wall_s = start.elapsed().as_secs_f64();
        (fleet, wall_s, ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
    };
    let (fleet, span_wall, span_allocs) = fleet_run(1);
    let (threaded, _, _) = fleet_run(2);
    assert_eq!(
        fleet.report, threaded.report,
        "{name}: fleet report must be bit-identical across worker-thread counts"
    );
    let mut span_stats = SimStats::default();
    for o in &fleet.groups {
        span_stats.heap_pushes += o.stats.heap_pushes;
        span_stats.heap_pops += o.stats.heap_pops;
        span_stats.tick_events += o.stats.tick_events;
        span_stats.tokens += o.stats.tokens;
        span_stats.admissions += o.stats.admissions;
    }

    // The reference run: each group's routed sub-trace through the
    // per-token loop, reports cross-checked group by group.
    let mut sub: Vec<Vec<RequestSpec>> = vec![Vec::new(); GROUPS];
    for (spec, &g) in trace.iter().zip(&fleet.routed) {
        sub[g].push(*spec);
    }
    let per_group_qps = rate / GROUPS as f64;
    let ref_options = ServeOptions::default().with_engine(TickEngine::PerTokenReference);
    let mut ref_stats = SimStats::default();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for (g, group_trace) in sub.iter().enumerate() {
        let (report, stats) =
            system.serve_trace_instrumented(group_trace, per_group_qps, ref_options.clone());
        assert_eq!(
            report, fleet.groups[g].report,
            "{name}: group {g} fleet run must report identically to the reference loop"
        );
        ref_stats.heap_pushes += stats.heap_pushes;
        ref_stats.heap_pops += stats.heap_pops;
        ref_stats.tick_events += stats.tick_events;
        ref_stats.tokens += stats.tokens;
        ref_stats.admissions += stats.admissions;
    }
    let ref_wall = start.elapsed().as_secs_f64();
    let ref_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    let reference = Measurement { wall_s: ref_wall, stats: ref_stats, allocations: ref_allocs };
    let span = Measurement { wall_s: span_wall, stats: span_stats, allocations: span_allocs };
    // The fleet run is two orders of magnitude faster than the reference
    // replay, so its wall clock is a few milliseconds — too short for a
    // ±20% gate. Clamp the *recorded* speedup at 20x: the gate then
    // compares saturated values (stable), and any regression big enough to
    // matter pulls the true ratio under the cap and trips it.
    let speedup = (reference.wall_s / span.wall_s.max(1e-9)).min(20.0);
    let heap_ratio =
        reference.stats.heap_events_per_token() / span.stats.heap_events_per_token().max(1e-9);
    println!(
        "{:>28} {:>9} {:>9.3}s {:>10} {:>9.3} {:>11} {:>9.4} {:>11}",
        name,
        "reference",
        reference.wall_s,
        "1.00x",
        reference.stats.heap_events_per_token(),
        "1.00x",
        reference.allocations_per_token(),
        reference.stats.tokens,
    );
    println!(
        "{:>28} {:>9} {:>9.3}s {:>9.2}x {:>9.3} {:>10.2}x {:>9.4} {:>11}",
        "",
        "span",
        span.wall_s,
        speedup,
        span.stats.heap_events_per_token(),
        heap_ratio,
        span.allocations_per_token(),
        span.stats.tokens,
    );
    // The same deterministic heap-traffic floor the single-system shapes
    // carry: incremental epoch driving must not reintroduce per-token heap
    // events. Wall-clock only gates in smoke mode (same noise argument).
    let churn = fleet.report.preemptions + fleet.report.swaps > 0;
    let floor = if churn { 3.0 } else { 5.0 };
    assert!(
        heap_ratio >= floor,
        "{name}: fleet heap-event ratio {heap_ratio:.2} < {floor}x vs the reference loop"
    );
    if smoke {
        assert!(
            span.wall_s <= 1.25 * reference.wall_s,
            "{name}: fleet run slower than the per-group reference ({:.3}s vs {:.3}s)",
            span.wall_s,
            reference.wall_s
        );
    }
    let row = format!(
        "    {{\"name\": \"{name}\", \"groups\": {GROUPS}, \"replicas_per_group\": {}, \
         \"slots_per_replica\": {}, \"sim_tokens\": {}, \"preemptions\": {}, \"swaps\": {},\n     \
         \"reference\": {},\n     \"span\": {},\n     \"span_wall_speedup\": {:.3}, \
         \"span_heap_ratio\": {:.3}, \"reports_identical\": true, \"threads_invariant\": true}}",
        system.replicas(),
        system.slots_per_replica(),
        reference.stats.tokens,
        fleet.report.preemptions,
        fleet.report.swaps,
        json_engine(&reference),
        json_engine(&span),
        speedup,
        heap_ratio,
    );
    let gate = GateRow {
        name: name.to_string(),
        engine: "span",
        heap_events_per_token: span.stats.heap_events_per_token(),
        wall_speedup: speedup,
    };

    // The crash-recovery shape: the identical fleet and trace under a
    // seeded chaos schedule (default rates: a crash per ~200 group-seconds
    // with ~10 s outages, host-link brownouts, stragglers) with bounded
    // retries. Same clamp rationale as above — the healthy per-token
    // replay is the baseline, so a fault-path slowdown large enough to
    // matter pulls the saturated ratio under the cap and trips the gate.
    let fname = "cluster-crash-recovery";
    let fault_opts = opts
        .with_faults(FaultPlan::chaos(
            0xFA01,
            GROUPS,
            Time::from_secs_f64(horizon_s),
            &ChaosRates::default(),
        ))
        .with_retry(RetryPolicy { max_attempts: 4, backoff: Time::from_us(50_000) });
    let fault_run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(0xD1CE);
        let opts = fault_opts.clone().with_threads(threads);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        let fleet = simulate_fleet_instrumented(&system, &trace, rate, &mut router, &opts);
        let wall_s = start.elapsed().as_secs_f64();
        (fleet, wall_s, ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
    };
    let (faulted, fault_wall, fault_allocs) = fault_run(1);
    let (threaded, _, _) = fault_run(2);
    assert_eq!(
        faulted.report, threaded.report,
        "{fname}: faulted fleet report must be bit-identical across worker-thread counts"
    );
    let degraded = faulted.report.degraded.as_ref().expect("chaos run reports degraded mode");
    assert!(degraded.availability < 1.0, "{fname}: crashes must dent availability");
    assert!(degraded.retries > 0, "{fname}: failover must redispatch orphans");
    assert_eq!(
        faulted.report.completed + faulted.report.rejected + degraded.drops,
        trace.len(),
        "{fname}: requests leaked from the conservation invariant"
    );
    let mut fault_stats = SimStats::default();
    for o in &faulted.groups {
        fault_stats.heap_pushes += o.stats.heap_pushes;
        fault_stats.heap_pops += o.stats.heap_pops;
        fault_stats.tick_events += o.stats.tick_events;
        fault_stats.tokens += o.stats.tokens;
        fault_stats.admissions += o.stats.admissions;
    }
    let fault_span =
        Measurement { wall_s: fault_wall, stats: fault_stats, allocations: fault_allocs };
    let fault_speedup = (reference.wall_s / fault_span.wall_s.max(1e-9)).min(20.0);
    let fault_heap_ratio = reference.stats.heap_events_per_token()
        / fault_span.stats.heap_events_per_token().max(1e-9);
    println!(
        "{:>28} {:>9} {:>9.3}s {:>10} {:>9.3} {:>11} {:>9.4} {:>11}",
        fname,
        "reference",
        reference.wall_s,
        "1.00x",
        reference.stats.heap_events_per_token(),
        "1.00x",
        reference.allocations_per_token(),
        reference.stats.tokens,
    );
    println!(
        "{:>28} {:>9} {:>9.3}s {:>9.2}x {:>9.3} {:>10.2}x {:>9.4} {:>11}",
        "",
        "span",
        fault_span.wall_s,
        fault_speedup,
        fault_span.stats.heap_events_per_token(),
        fault_heap_ratio,
        fault_span.allocations_per_token(),
        fault_span.stats.tokens,
    );
    // Retried work means re-admissions, so the churn floor applies — but
    // crash recovery must not reintroduce per-token heap traffic either.
    assert!(
        fault_heap_ratio >= 3.0,
        "{fname}: faulted fleet heap-event ratio {fault_heap_ratio:.2} < 3x vs the reference loop"
    );
    if smoke {
        assert!(
            fault_span.wall_s <= 1.25 * reference.wall_s,
            "{fname}: faulted fleet run slower than the per-group reference ({:.3}s vs {:.3}s)",
            fault_span.wall_s,
            reference.wall_s
        );
    }
    let fault_row = format!(
        "    {{\"name\": \"{fname}\", \"groups\": {GROUPS}, \"replicas_per_group\": {}, \
         \"slots_per_replica\": {}, \"sim_tokens\": {}, \"crashes\": {}, \"recoveries\": {}, \
         \"retries\": {}, \"drops\": {}, \"availability\": {:.4},\n     \
         \"reference\": {},\n     \"span\": {},\n     \"span_wall_speedup\": {:.3}, \
         \"span_heap_ratio\": {:.3}, \"reports_identical\": true, \"threads_invariant\": true, \
         \"conservation\": true}}",
        system.replicas(),
        system.slots_per_replica(),
        fault_span.stats.tokens,
        degraded.crashes,
        degraded.recoveries,
        degraded.retries,
        degraded.drops,
        degraded.availability,
        json_engine(&reference),
        json_engine(&fault_span),
        fault_speedup,
        fault_heap_ratio,
    );
    let fault_gate = GateRow {
        name: fname.to_string(),
        engine: "span",
        heap_events_per_token: fault_span.stats.heap_events_per_token(),
        wall_speedup: fault_speedup,
    };
    (vec![row, fault_row], vec![gate, fault_gate])
}

/// The disaggregated fleet shape: an 8-group PP/8 fleet split 4 prefill /
/// 4 decode over the shared switch-attached KV pool, serving a
/// ShareGPT-like trace with chunked prefill. The reference is the
/// *colocated* per-group per-token replay of the same trace (routed by
/// the colocated epoch driver), so the `span_wall_speedup` row measures
/// the whole disaggregated pipeline — routing, chunked prefill, publish,
/// claim, steal — against the per-token loop serving identical work; the
/// generated-token populations of the two runs are equal, so the heap
/// ratio compares like with like. Asserts along the way: handoffs
/// engaged, the pool bound held, and the split fleet is bit-identical
/// across 1 vs 2 worker threads. Same 20x speedup clamp as the other
/// cluster rows.
///
/// A second row — `cluster-disagg-chaos` — reruns the same split fleet
/// and trace under a seeded [`FaultPlan::chaos_disagg`] schedule
/// (decode-tier-weighted crashes, pool-link brownouts) with warm
/// recovery, bounded retries and an active saturation admission policy:
/// the survivable-disaggregation path end to end. It asserts thread-count
/// invariance under disagg faults, the *extended* conservation invariant
/// (`completed + rejected + dropped + shed = offered`) and that crashed
/// decode groups' claims came back from the pool's parked copies, and it
/// rides the same `--check-against` gate with the healthy colocated
/// replay as its ratio baseline.
fn measure_disagg(smoke: bool) -> (Vec<String>, Vec<GateRow>) {
    const GROUPS: usize = 8;
    let name = "cluster-disagg-4p4d-sharegpt";
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let horizon_s = if smoke { 60.0 } else { 240.0 };
    let rate = 0.6 * GROUPS as f64 * system.capacity_qps(160, 210);
    let w = Workload { lengths: LengthSampler::ShareGpt, ..Workload::chatbot(rate, 0xD15A) };
    let trace = w.generate(Time::from_secs_f64(horizon_s), 4096);
    let opts = FleetOptions::new(GROUPS).with_epoch(Time::from_secs_f64(0.25));
    let dcfg = DisaggConfig::split(
        4,
        4,
        32 * 161,
        system.swap_cost().with_switch_hops(2, &FabricConfig::cent(32)),
    )
    .with_prefill_chunk(512);

    let disagg_run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(0xD1CE);
        let opts = opts.clone().with_threads(threads);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        let out = simulate_fleet_disagg(&system, &trace, rate, &mut router, &opts, &dcfg);
        let wall_s = start.elapsed().as_secs_f64();
        (out, wall_s, ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
    };
    let (out, disagg_wall, disagg_allocs) = disagg_run(1);
    let (threaded, _, _) = disagg_run(2);
    assert_eq!(
        out.report, threaded.report,
        "{name}: disaggregated fleet report must be bit-identical across worker-thread counts"
    );
    assert_eq!(
        out.routed, threaded.routed,
        "{name}: disaggregated routing must be bit-identical across worker-thread counts"
    );
    assert!(out.log.handoffs > 0, "{name}: the handoff path must engage");
    assert!(
        out.log.pool_peak_tokens <= out.log.pool_capacity_tokens,
        "{name}: pool peak {} exceeded the {}-token bound",
        out.log.pool_peak_tokens,
        out.log.pool_capacity_tokens
    );
    let mut disagg_stats = SimStats::default();
    for o in &out.groups {
        disagg_stats.heap_pushes += o.stats.heap_pushes;
        disagg_stats.heap_pops += o.stats.heap_pops;
        disagg_stats.tick_events += o.stats.tick_events;
        disagg_stats.tokens += o.stats.tokens;
        disagg_stats.admissions += o.stats.admissions;
    }

    // The reference: the colocated driver routes the identical trace, and
    // each group's sub-trace replays through the per-token loop (timed).
    let mut router = PowerOfTwoChoices::seeded(0xD1CE);
    let colocated = simulate_fleet_instrumented(&system, &trace, rate, &mut router, &opts);
    let mut sub: Vec<Vec<RequestSpec>> = vec![Vec::new(); GROUPS];
    for (spec, &g) in trace.iter().zip(&colocated.routed) {
        sub[g].push(*spec);
    }
    let per_group_qps = rate / GROUPS as f64;
    let ref_options = ServeOptions::default().with_engine(TickEngine::PerTokenReference);
    let mut ref_stats = SimStats::default();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for group_trace in &sub {
        let (_, stats) =
            system.serve_trace_instrumented(group_trace, per_group_qps, ref_options.clone());
        ref_stats.heap_pushes += stats.heap_pushes;
        ref_stats.heap_pops += stats.heap_pops;
        ref_stats.tick_events += stats.tick_events;
        ref_stats.tokens += stats.tokens;
        ref_stats.admissions += stats.admissions;
    }
    let ref_wall = start.elapsed().as_secs_f64();
    let ref_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(
        ref_stats.tokens, disagg_stats.tokens,
        "{name}: the split pipeline must generate exactly the colocated token population"
    );

    let reference = Measurement { wall_s: ref_wall, stats: ref_stats, allocations: ref_allocs };
    let span = Measurement { wall_s: disagg_wall, stats: disagg_stats, allocations: disagg_allocs };
    let speedup = (reference.wall_s / span.wall_s.max(1e-9)).min(20.0);
    let heap_ratio =
        reference.stats.heap_events_per_token() / span.stats.heap_events_per_token().max(1e-9);
    println!(
        "{:>28} {:>9} {:>9.3}s {:>10} {:>9.3} {:>11} {:>9.4} {:>11}",
        name,
        "reference",
        reference.wall_s,
        "1.00x",
        reference.stats.heap_events_per_token(),
        "1.00x",
        reference.allocations_per_token(),
        reference.stats.tokens,
    );
    println!(
        "{:>28} {:>9} {:>9.3}s {:>9.2}x {:>9.3} {:>10.2}x {:>9.4} {:>11}",
        "",
        "span",
        span.wall_s,
        speedup,
        span.stats.heap_events_per_token(),
        heap_ratio,
        span.allocations_per_token(),
        span.stats.tokens,
    );
    // Disaggregation admits every request twice (prompt on the prefill
    // tier, remainder on the decode tier), so the heap floor is the churn
    // tier's, not the clean 5x.
    assert!(
        heap_ratio >= 3.0,
        "{name}: disaggregated heap-event ratio {heap_ratio:.2} < 3x vs the reference loop"
    );
    if smoke {
        assert!(
            span.wall_s <= 1.25 * reference.wall_s,
            "{name}: disaggregated run slower than the per-group reference ({:.3}s vs {:.3}s)",
            span.wall_s,
            reference.wall_s
        );
    }
    let row = format!(
        "    {{\"name\": \"{name}\", \"groups\": {GROUPS}, \"prefill_groups\": 4, \
         \"decode_groups\": 4, \"sim_tokens\": {}, \"handoffs\": {}, \"steals\": {}, \
         \"deferred_publishes\": {}, \"pool_peak_tokens\": {},\n     \
         \"reference\": {},\n     \"span\": {},\n     \"span_wall_speedup\": {:.3}, \
         \"span_heap_ratio\": {:.3}, \"reports_identical\": true, \"threads_invariant\": true, \
         \"pool_bound_held\": true}}",
        span.stats.tokens,
        out.log.handoffs,
        out.log.steals,
        out.log.deferred,
        out.log.pool_peak_tokens,
        json_engine(&reference),
        json_engine(&span),
        speedup,
        heap_ratio,
    );
    let gate = GateRow {
        name: name.to_string(),
        engine: "span",
        heap_events_per_token: span.stats.heap_events_per_token(),
        wall_speedup: speedup,
    };

    // The survivable-disaggregation shape: the identical split fleet and
    // trace under a seeded disagg-aware chaos schedule — decode-tier-
    // weighted crashes (claimed contexts stranded mid-decode), pool-link
    // brownouts stretching every transfer in the window — with warm
    // recovery, bounded retries and an active admission policy. The
    // healthy colocated replay stays the ratio baseline, so a fault-path
    // slowdown large enough to matter pulls the saturated speedup under
    // the 20x clamp and trips the gate.
    let fname = "cluster-disagg-chaos";
    let rates = ChaosRates { decode_crash_mult: 1.5, ..ChaosRates::default() };
    let fault_opts = opts
        .clone()
        .with_faults(FaultPlan::chaos_disagg(
            0xFA02,
            &dcfg.roles,
            Time::from_secs_f64(horizon_s),
            &rates,
        ))
        .with_retry(RetryPolicy { max_attempts: 4, backoff: Time::from_us(50_000) })
        .with_recovery(RecoveryMode::Warm { retained_fraction: 0.5 })
        .with_admission(AdmissionPolicy::shed_above(6.0));
    let chaos_run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(0xD1CE);
        let opts = fault_opts.clone().with_threads(threads);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        let out = simulate_fleet_disagg(&system, &trace, rate, &mut router, &opts, &dcfg);
        let wall_s = start.elapsed().as_secs_f64();
        (out, wall_s, ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
    };
    let (chaos, chaos_wall, chaos_allocs) = chaos_run(1);
    let (threaded, _, _) = chaos_run(2);
    assert_eq!(
        chaos.report, threaded.report,
        "{fname}: chaotic disagg report must be bit-identical across worker-thread counts"
    );
    assert_eq!(
        chaos.routed, threaded.routed,
        "{fname}: chaotic disagg routing must be bit-identical across worker-thread counts"
    );
    let degraded = chaos.report.degraded.as_ref().expect("chaos run reports degraded mode");
    assert!(degraded.crashes > 0, "{fname}: the chaos schedule must actually crash groups");
    assert_eq!(
        chaos.report.completed + chaos.report.rejected + degraded.drops + degraded.shed,
        trace.len(),
        "{fname}: requests leaked from the extended conservation invariant"
    );
    assert!(
        degraded.pool_rescued > 0,
        "{fname}: decode-tier crashes must rescue parked pool copies"
    );
    let mut chaos_stats = SimStats::default();
    for o in &chaos.groups {
        chaos_stats.heap_pushes += o.stats.heap_pushes;
        chaos_stats.heap_pops += o.stats.heap_pops;
        chaos_stats.tick_events += o.stats.tick_events;
        chaos_stats.tokens += o.stats.tokens;
        chaos_stats.admissions += o.stats.admissions;
    }
    let chaos_span =
        Measurement { wall_s: chaos_wall, stats: chaos_stats, allocations: chaos_allocs };
    let chaos_speedup = (reference.wall_s / chaos_span.wall_s.max(1e-9)).min(20.0);
    let chaos_heap_ratio = reference.stats.heap_events_per_token()
        / chaos_span.stats.heap_events_per_token().max(1e-9);
    println!(
        "{:>28} {:>9} {:>9.3}s {:>9.2}x {:>9.3} {:>10.2}x {:>9.4} {:>11}",
        fname,
        "span",
        chaos_span.wall_s,
        chaos_speedup,
        chaos_span.stats.heap_events_per_token(),
        chaos_heap_ratio,
        chaos_span.allocations_per_token(),
        chaos_span.stats.tokens,
    );
    // Crash retries and rescues re-admit work, so the churn floor applies;
    // the fault path must still not reintroduce per-token heap traffic.
    assert!(
        chaos_heap_ratio >= 3.0,
        "{fname}: chaotic disagg heap-event ratio {chaos_heap_ratio:.2} < 3x vs the reference loop"
    );
    if smoke {
        assert!(
            chaos_span.wall_s <= 1.25 * reference.wall_s,
            "{fname}: chaotic disagg run slower than the per-group reference ({:.3}s vs {:.3}s)",
            chaos_span.wall_s,
            reference.wall_s
        );
    }
    let chaos_row = format!(
        "    {{\"name\": \"{fname}\", \"groups\": {GROUPS}, \"prefill_groups\": 4, \
         \"decode_groups\": 4, \"sim_tokens\": {}, \"crashes\": {}, \"pool_rescued\": {}, \
         \"pool_lost\": {}, \"warm_rejoins\": {}, \"shed\": {}, \"availability\": {:.4},\n     \
         \"reference\": {},\n     \"span\": {},\n     \"span_wall_speedup\": {:.3}, \
         \"span_heap_ratio\": {:.3}, \"reports_identical\": true, \"threads_invariant\": true, \
         \"conservation\": true}}",
        chaos_span.stats.tokens,
        degraded.crashes,
        degraded.pool_rescued,
        degraded.pool_lost,
        degraded.warm_rejoins,
        degraded.shed,
        degraded.availability,
        json_engine(&reference),
        json_engine(&chaos_span),
        chaos_speedup,
        chaos_heap_ratio,
    );
    let chaos_gate = GateRow {
        name: fname.to_string(),
        engine: "span",
        heap_events_per_token: chaos_span.stats.heap_events_per_token(),
        wall_speedup: chaos_speedup,
    };
    (vec![row, chaos_row], vec![gate, chaos_gate])
}

fn json_engine(m: &Measurement) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"sim_tokens_per_wall_s\": {:.1}, \"heap_pushes\": {}, \
         \"heap_pops\": {}, \"tick_events\": {}, \"heap_events_per_token\": {:.4}, \
         \"allocs_per_token\": {:.4}}}",
        m.wall_s,
        if m.wall_s > 0.0 { m.stats.tokens as f64 / m.wall_s } else { 0.0 },
        m.stats.heap_pushes,
        m.stats.heap_pops,
        m.stats.tick_events,
        m.stats.heap_events_per_token(),
        m.allocations_per_token(),
    )
}

/// Per-`(shape, engine)` numbers the regression gate compares.
struct GateRow {
    name: String,
    engine: &'static str,
    heap_events_per_token: f64,
    wall_speedup: f64,
}

/// Extracts `(shape, engine, heap_events_per_token, wall_speedup)` rows
/// from a `BENCH_serving_sim*.json` file. The file is machine-written by
/// this bin (one `"name"` line, one `"<engine>": {...}` line per fast
/// engine and one flat `"<engine>_wall_speedup"` line per shape, in that
/// order), so a line scan is exact — the build environment has no serde
/// to do better.
fn parse_baseline(text: &str) -> Vec<GateRow> {
    fn field(line: &str, key: &str) -> Option<f64> {
        let tail = &line[line.find(&format!("\"{key}\": "))? + key.len() + 4..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        tail[..end].trim().parse().ok()
    }
    const GATED: [&str; 2] = ["bucketed", "span"];
    let mut rows = Vec::new();
    let mut name: Option<String> = None;
    let mut hept: [Option<f64>; 2] = [None; 2];
    for line in text.lines() {
        if let Some(tail) = line.trim().strip_prefix("{\"name\": \"") {
            name = tail.split('"').next().map(str::to_string);
            hept = [None; 2];
        }
        for (i, engine) in GATED.iter().enumerate() {
            if line.trim_start().starts_with(&format!("\"{engine}\":")) {
                hept[i] = field(line, "heap_events_per_token");
            }
            if let Some(speedup) = field(line, &format!("{engine}_wall_speedup")) {
                if let (Some(name), Some(heap_events_per_token)) = (name.clone(), hept[i].take()) {
                    rows.push(GateRow {
                        name,
                        engine,
                        heap_events_per_token,
                        wall_speedup: speedup,
                    });
                }
            }
        }
    }
    rows
}

/// Allowed regression on either gated metric.
const GATE_SLACK: f64 = 1.20;

/// Steady-state allocation ceiling for the fast engines, in heap
/// allocations per simulated token. The hot paths are allocation-free;
/// what remains scales with admissions (records, requeues, report
/// assembly), two orders of magnitude below one-per-token.
const ALLOC_CEILING: f64 = 0.05;

fn parse_engines(arg: &str) -> Vec<TickEngine> {
    if arg == "all" {
        return vec![TickEngine::PhaseBucketed, TickEngine::SpanFastForward];
    }
    let engines: Vec<TickEngine> = arg
        .split(',')
        .filter(|s| *s != "reference") // always measured as the baseline
        .map(|s| match s {
            "bucketed" => TickEngine::PhaseBucketed,
            "span" => TickEngine::SpanFastForward,
            other => panic!("unknown engine {other:?} (expected reference/bucketed/span)"),
        })
        .collect();
    // The reference loop alone measures nothing (every recorded metric is a
    // ratio against it), and an empty set would write a malformed shape row.
    assert!(!engines.is_empty(), "--engines must name at least one of bucketed/span");
    engines
}

fn main() {
    let mut smoke = false;
    let mut check_against: Option<String> = None;
    let mut engines = parse_engines("all");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check-against" => {
                check_against = Some(args.next().expect("--check-against needs a path"));
            }
            "--engines" => {
                engines = parse_engines(&args.next().expect("--engines needs a list or 'all'"));
            }
            other => panic!(
                "unknown argument {other:?} (expected --smoke / --engines / --check-against)"
            ),
        }
    }
    let shapes = if smoke { smoke_shapes() } else { full_shapes() };

    println!(
        "{:>28} {:>9} {:>10} {:>10} {:>9} {:>11} {:>9} {:>11}",
        "shape", "engine", "wall", "speedup", "hp/tok", "hp ratio", "alloc/tok", "tokens"
    );
    let mut rows = Vec::new();
    let mut gate_rows = Vec::new();
    // The smoke gate compares wall clocks on a shared CI runner; take the
    // best of five so scheduler stalls cannot flip the not-slower assert
    // or the speedup half of the regression gate.
    let repeats = if smoke { 5 } else { 2 };
    for shape in &shapes {
        let (reference, ref_report) = measure(shape, TickEngine::PerTokenReference, repeats);
        println!(
            "{:>28} {:>9} {:>9.3}s {:>10} {:>9.3} {:>11} {:>9.4} {:>11}",
            shape.name,
            "reference",
            reference.wall_s,
            "1.00x",
            reference.stats.heap_events_per_token(),
            "1.00x",
            reference.allocations_per_token(),
            reference.stats.tokens,
        );
        let mut flat = Vec::new();
        let mut engine_rows = vec![format!("\"reference\": {}", json_engine(&reference))];
        let mut measured = Vec::new();
        for &engine in &engines {
            let (m, report) = measure(shape, engine, repeats);
            assert_eq!(
                ref_report,
                report,
                "{}: {} engine must report identically to the reference before perf means \
                 anything",
                shape.name,
                engine.name()
            );
            let speedup = reference.wall_s / m.wall_s.max(1e-9);
            let heap_ratio =
                reference.stats.heap_events_per_token() / m.stats.heap_events_per_token().max(1e-9);
            println!(
                "{:>28} {:>9} {:>9.3}s {:>9.2}x {:>9.3} {:>10.2}x {:>9.4} {:>11}",
                "",
                engine.name(),
                m.wall_s,
                speedup,
                m.stats.heap_events_per_token(),
                heap_ratio,
                m.allocations_per_token(),
                m.stats.tokens,
            );
            engine_rows.push(format!("\"{}\": {}", engine.name(), json_engine(&m)));
            flat.push(format!(
                "\"{0}_wall_speedup\": {1:.3}, \"{0}_heap_ratio\": {2:.3}",
                engine.name(),
                speedup,
                heap_ratio
            ));
            gate_rows.push(GateRow {
                name: shape.name.to_string(),
                engine: engine.name(),
                heap_events_per_token: m.stats.heap_events_per_token(),
                wall_speedup: speedup,
            });
            // The no-alloc-in-steady-state assertion: scratch buffers are
            // arena'd, so allocations scale with admissions, not tokens.
            assert!(
                m.allocations_per_token() < ALLOC_CEILING,
                "{}: {} engine allocates {:.4}/token (ceiling {ALLOC_CEILING})",
                shape.name,
                engine.name(),
                m.allocations_per_token()
            );
            measured.push((engine, m));
        }
        let slots = shape.system.slots_per_replica();
        let churn = ref_report.preemptions + ref_report.swaps > 0;
        for (engine, m) in &measured {
            // The heap-event ratio is deterministic: on any shape with >= 8
            // slots per replica the fast engines must batch at least 5x —
            // relaxed to 3x under eviction churn, where every resume is a
            // fresh admission and heap traffic is admission-bound.
            if slots >= 8 {
                let heap_ratio = reference.stats.heap_events_per_token()
                    / m.stats.heap_events_per_token().max(1e-9);
                let floor = if churn { 3.0 } else { 5.0 };
                assert!(
                    heap_ratio >= floor,
                    "{}: {} heap-event ratio {heap_ratio:.2} < {floor}x on {slots} slots/replica",
                    shape.name,
                    engine.name()
                );
            }
            // Wall-clock is noisy in CI; "not slower" with 25% slack in
            // smoke mode, while the full run reports the real speedup.
            if smoke {
                assert!(
                    m.wall_s <= 1.25 * reference.wall_s,
                    "{}: {} engine slower than reference ({:.3}s vs {:.3}s)",
                    shape.name,
                    engine.name(),
                    m.wall_s,
                    reference.wall_s
                );
            }
        }
        // The span engine's acceptance floors against the *bucketed*
        // engine on the clean saturated shapes: >= 5x fewer heap events
        // per token everywhere, and >= 3x wall-clock on the full-mode
        // saturated chatbot sweep (wall asserts stay out of smoke mode,
        // where runs are too short to time reliably).
        let span = measured.iter().find(|(e, _)| *e == TickEngine::SpanFastForward);
        let bucketed = measured.iter().find(|(e, _)| *e == TickEngine::PhaseBucketed);
        if let (Some((_, span)), Some((_, bucketed))) = (span, bucketed) {
            if !churn {
                let vs_bucketed = bucketed.stats.heap_events_per_token()
                    / span.stats.heap_events_per_token().max(1e-9);
                assert!(
                    vs_bucketed >= 5.0,
                    "{}: span engine only {vs_bucketed:.2}x fewer heap events/token than bucketed",
                    shape.name
                );
            }
            if shape.name == "llama2_7b-pp8-chatbot-1.2x" {
                let vs_bucketed = bucketed.wall_s / span.wall_s.max(1e-9);
                assert!(
                    vs_bucketed >= 3.0,
                    "{}: span engine only {vs_bucketed:.2}x faster than bucketed",
                    shape.name
                );
            }
        }
        rows.push(format!(
            "    {{\"name\": \"{}\", \"replicas\": {}, \"slots_per_replica\": {}, \
             \"sim_tokens\": {}, \"preemptions\": {}, \"swaps\": {},\n     {},\n     \
             {}, \"reports_identical\": true}}",
            shape.name,
            shape.system.replicas(),
            slots,
            reference.stats.tokens,
            ref_report.preemptions,
            ref_report.swaps,
            engine_rows.join(",\n     "),
            flat.join(", "),
        ));
    }

    // The fleet shapes (healthy diurnal + crash-recovery) ride the same
    // artifact and gate: each row carries a "span" engine block and a
    // span_wall_speedup, so --check-against covers the cluster path — and
    // the fault path — with no parser changes.
    let (cluster_rows, cluster_gates) = measure_cluster(smoke);
    rows.extend(cluster_rows);
    gate_rows.extend(cluster_gates);
    let (disagg_rows, disagg_gates) = measure_disagg(smoke);
    rows.extend(disagg_rows);
    gate_rows.extend(disagg_gates);

    let json = format!(
        "{{\n  \"id\": \"BENCH_serving_sim\",\n  \"mode\": \"{}\",\n  \"shapes\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_serving_sim.json");
    std::fs::write(&path, json).expect("writing BENCH_serving_sim.json");
    println!("\nwrote {}", path.display());

    // The CI perf-regression gate: every (shape, engine) row in the
    // committed baseline must still be measured and must not regress by
    // more than 20% on either heap events per token or the
    // reference→engine wall-clock speedup.
    if let Some(baseline_path) = check_against {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(!baseline.is_empty(), "baseline {baseline_path} has no shapes");
        println!("checking against {baseline_path} (\u{2264}{GATE_SLACK}x regression allowed):");
        let mut failures = Vec::new();
        for b in &baseline {
            let Some(now) = gate_rows.iter().find(|g| g.name == b.name && g.engine == b.engine)
            else {
                failures
                    .push(format!("shape {:?} engine {} missing from this run", b.name, b.engine));
                continue;
            };
            println!(
                "  {:>28}/{:>8}: heap/tok {:.4} (baseline {:.4}) | speedup {:.3}x (baseline \
                 {:.3}x)",
                b.name,
                b.engine,
                now.heap_events_per_token,
                b.heap_events_per_token,
                now.wall_speedup,
                b.wall_speedup,
            );
            // Failure lines are self-contained — measured value, baseline
            // value and the allowed threshold — so a CI log alone is
            // enough to judge how far over the line the run landed.
            if now.heap_events_per_token > GATE_SLACK * b.heap_events_per_token {
                failures.push(format!(
                    "{}/{}: heap events/token regressed: measured {:.4}, baseline {:.4}, \
                     allowed at most {:.4} (baseline x {GATE_SLACK})",
                    b.name,
                    b.engine,
                    now.heap_events_per_token,
                    b.heap_events_per_token,
                    GATE_SLACK * b.heap_events_per_token,
                ));
            }
            if now.wall_speedup < b.wall_speedup / GATE_SLACK {
                failures.push(format!(
                    "{}/{}: wall-clock speedup regressed: measured {:.3}x, baseline {:.3}x, \
                     allowed at least {:.3}x (baseline / {GATE_SLACK})",
                    b.name,
                    b.engine,
                    now.wall_speedup,
                    b.wall_speedup,
                    b.wall_speedup / GATE_SLACK,
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "perf regression gate failed:\n  {}\n(if intentional: rerun `cargo run --release \
             -p cent-bench --bin sim_perf -- --smoke`, copy results/BENCH_serving_sim.json \
             over {baseline_path}, and commit it)",
            failures.join("\n  ")
        );
        println!("perf gate passed ({} rows)", baseline.len());
    }
}
