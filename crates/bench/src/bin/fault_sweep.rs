//! Fault-injection sweep: fleet availability, retries and failover tails
//! vs crash rate × routing policy on a fleet of the paper's PP/8
//! deployments.
//!
//! For each crash rate a seeded [`FaultPlan::chaos`] schedule (crashes with
//! ten-second mean outages, occasional host-link degradation windows, a few
//! stragglers) is compiled once and shared by every router, so the policies
//! face *identical* failures and the comparison isolates routing. Rate zero
//! runs the empty schedule — the healthy driver, bit-for-bit.
//!
//! A final disaggregated shape — a 2-prefill/2-decode split of the same
//! deployment with a decode-tier crash, warm recovery and a saturation
//! admission policy — exercises the survivable-disaggregation path: the
//! crashed tier's claimed contexts are rescued from the shared pool's
//! parked copies instead of re-prefilled.
//!
//! Prints the degraded-operation table and writes
//! `results/BENCH_faults.json`. Run with
//! `cargo run --release -p cent-bench --bin fault_sweep`; pass `--smoke`
//! for the CI mode (16 groups, two crash rates), which also asserts the
//! conservation invariant (`completed + rejected + dropped = offered`) and
//! that failover actually engaged (orphans retried, availability dented).
//! The disagg shape always asserts the *extended* invariant
//! (`completed + rejected + dropped + shed = offered`) and that pool
//! rescues engaged.

use cent_bench::Report;
use cent_cluster::{
    simulate_fleet, simulate_fleet_disagg, AdmissionPolicy, ChaosRates, DisaggConfig, FaultPlan,
    FaultSchedule, FaultSpec, FleetOptions, FleetReport, JoinShortestQueue, PowerOfTwoChoices,
    RecoveryMode, RetryPolicy, RoundRobin, RoutingPolicy, SessionAffinity,
};
use cent_cxl::FabricConfig;
use cent_model::ModelConfig;
use cent_serving::{LengthSampler, LoadCurve, ServingSystem, Workload};
use cent_types::Time;

/// Router factories: each sweep point gets a fresh router so per-point
/// results never depend on sweep order.
fn routers() -> Vec<(&'static str, Box<dyn RoutingPolicy>)> {
    vec![
        ("jsq", Box::new(JoinShortestQueue)),
        ("p2c", Box::new(PowerOfTwoChoices::seeded(0xD1CE))),
        ("rr", Box::new(RoundRobin::default())),
        ("affinity", Box::new(SessionAffinity)),
    ]
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let (groups, horizon_s) = if smoke { (16, 120.0) } else { (64, 600.0) };
    // Crashes per group-second; 0 is the healthy reference point.
    let crash_rates: &[f64] =
        if smoke { &[0.0, 1.0 / 60.0] } else { &[0.0, 1.0 / 400.0, 1.0 / 200.0, 1.0 / 100.0] };

    // ShareGPT-like lengths at a moderate 0.55x load: headroom is what
    // failover spends — survivors must absorb the victims' work — and the
    // diurnal peak (1.5x of base) stays under fleet capacity, so the tails
    // measure failover, not steady-state overload.
    let (mean_prompt, mean_decode) = (160, 210);
    let fleet_capacity = groups as f64 * system.capacity_qps(mean_prompt, mean_decode);
    let offered = 0.55 * fleet_capacity;
    let horizon = Time::from_secs_f64(horizon_s);
    let curve = LoadCurve::diurnal(horizon_s, 0.5, 1.5);
    let workload =
        Workload { lengths: LengthSampler::ShareGpt, ..Workload::chatbot(offered, 0xFA117) };
    let mut trace = workload.generate_modulated(horizon, 4096, &curve, 55);
    Workload::assign_sessions(&mut trace, groups as u64 * 8, 0xBEEF);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let retry = RetryPolicy { max_attempts: 4, backoff: Time::from_us(50_000) };
    println!(
        "{groups}-group fleet | capacity {fleet_capacity:.0} q/s | {} requests at 0.55x | \
         retry {} attempts\n",
        trace.len(),
        retry.max_attempts
    );

    let mut results: Vec<(&'static str, Vec<(String, FleetReport)>)> =
        routers().into_iter().map(|(name, _)| (name, Vec::new())).collect();
    for &rate in crash_rates {
        // One schedule per rate, shared by all routers: identical failures,
        // different routing.
        let faults = if rate > 0.0 {
            FaultPlan::chaos(
                0xC4A5 ^ rate.to_bits(),
                groups,
                horizon,
                &ChaosRates { crash_rate: rate, ..ChaosRates::default() },
            )
        } else {
            FaultSchedule::empty()
        };
        let label = if rate > 0.0 { format!("1/{:.0}s", 1.0 / rate) } else { "none".to_string() };
        for (slot, (name, mut router)) in results.iter_mut().zip(routers()) {
            let opts = FleetOptions::new(groups)
                .with_threads(threads)
                .with_epoch(Time::from_secs_f64(0.25))
                .with_faults(faults.clone())
                .with_retry(retry);
            let start = std::time::Instant::now();
            let report = simulate_fleet(&system, &trace, offered, router.as_mut(), &opts);
            let (avail, retries, drops) = report
                .degraded
                .as_ref()
                .map_or((1.0, 0, 0), |d| (d.availability, d.retries, d.drops));
            println!(
                "crash {label:>7} {name:>8}: availability {:.4} | {} retries, {} drops | \
                 TTFT p99 {} | {:.2?}",
                avail,
                retries,
                drops,
                report.ttft.p99,
                start.elapsed(),
            );
            assert_eq!(slot.0, name);
            if smoke {
                assert_eq!(
                    report.completed + report.rejected + drops,
                    trace.len(),
                    "{name} crash {label}: requests leaked from the conservation invariant"
                );
                if rate > 0.0 {
                    let d = report.degraded.as_ref().expect("chaos run reports degraded mode");
                    assert!(d.availability < 1.0, "{name}: crashes must dent availability");
                    assert!(d.retries > 0, "{name}: failover must redispatch orphans");
                }
            }
            slot.1.push((label.clone(), report));
        }
    }

    // The survivable-disaggregation shape: a 2p/2d split of the same
    // deployment over the shared switch-attached pool. One decode group
    // crashes mid-run and rejoins warm; its claimed contexts must come
    // back from the pool's parked copies (switch-hop transfer cost), not
    // from re-prefill. A saturation admission policy is active so the
    // extended conservation invariant — shed included — is what must hold.
    let dhorizon_s = if smoke { 60.0 } else { 180.0 };
    let drate = 0.55 * 2.0 * system.capacity_qps(mean_prompt, mean_decode);
    let dworkload =
        Workload { lengths: LengthSampler::ShareGpt, ..Workload::chatbot(drate, 0xFA115) };
    let dtrace = dworkload.generate(Time::from_secs_f64(dhorizon_s), 4096);
    let dcfg = DisaggConfig::split(
        2,
        2,
        32 * 161,
        system.swap_cost().with_switch_hops(2, &FabricConfig::cent(32)),
    );
    let dfaults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 2,
        at: Time::from_secs_f64(0.4 * dhorizon_s),
        recover_after: Some(Time::from_secs_f64(8.0)),
    }]);
    let mut drouter = JoinShortestQueue;
    let dopts = FleetOptions::new(4)
        .with_threads(threads)
        .with_epoch(Time::from_secs_f64(0.25))
        .with_faults(dfaults)
        .with_retry(retry)
        .with_recovery(RecoveryMode::Warm { retained_fraction: 0.5 })
        .with_admission(AdmissionPolicy::shed_above(4.0));
    let start = std::time::Instant::now();
    let dout = simulate_fleet_disagg(&system, &dtrace, drate, &mut drouter, &dopts, &dcfg);
    let degraded =
        dout.report.degraded.as_ref().expect("a faulted disagg run reports degraded mode");
    println!(
        "\ndisagg 2p2d decode-crash: availability {:.4} | {} rescued ({} lost), {} shed | \
         rescue p99 {} | {:.2?}",
        degraded.availability,
        degraded.pool_rescued,
        degraded.pool_lost,
        degraded.shed,
        degraded.rescue_latency.p99,
        start.elapsed(),
    );
    assert_eq!(
        dout.report.completed + dout.report.rejected + degraded.drops + degraded.shed,
        dtrace.len(),
        "disagg: requests leaked from the extended conservation invariant"
    );
    assert!(
        degraded.pool_rescued > 0,
        "disagg: a loaded decode-tier crash must rescue parked pool copies"
    );
    assert_eq!(degraded.pool_lost, 0, "disagg: a roomy durable pool must not lose any parked copy");

    let mut report = Report::new(
        "BENCH_faults",
        if smoke {
            "Fault-injection sweep (smoke): 16-group PP/8 fleet, chaos crash schedules"
        } else {
            "Fault-injection sweep: 64-group PP/8 fleet, chaos crash schedules"
        },
        "degraded-mode serving beyond the paper: seeded group crashes, bounded retries and \
         health-aware routing — availability and failover tails vs crash rate, per policy",
    );
    for (name, rows) in &results {
        let series = |f: &dyn Fn(&FleetReport) -> f64| -> Vec<(String, f64)> {
            rows.iter().map(|(x, r)| (x.clone(), f(r))).collect()
        };
        report.push_series(
            &format!("{name} availability"),
            "fraction of group-seconds up",
            &series(&|r| r.degraded.as_ref().map_or(1.0, |d| d.availability)),
        );
        report.push_series(
            &format!("{name} retries"),
            "redispatches",
            &series(&|r| r.degraded.as_ref().map_or(0.0, |d| d.retries as f64)),
        );
        report.push_series(
            &format!("{name} drops"),
            "requests",
            &series(&|r| r.degraded.as_ref().map_or(0.0, |d| d.drops as f64)),
        );
        report.push_series(
            &format!("{name} failover p99"),
            "s",
            &series(&|r| r.degraded.as_ref().map_or(0.0, |d| d.failover_latency.p99.as_secs())),
        );
        report.push_series(
            &format!("{name} clean goodput"),
            "q/s outside outages",
            &series(&|r| {
                r.degraded.as_ref().map_or_else(
                    || {
                        if r.makespan > Time::ZERO {
                            r.completed as f64 / r.makespan.as_secs()
                        } else {
                            0.0
                        }
                    },
                    |d| d.goodput_clean_qps,
                )
            }),
        );
        report.push_series(&format!("{name} TTFT p99"), "s", &series(&|r| r.ttft.p99.as_secs()));
    }
    let drow = |v: f64| vec![("2p2d-decode-crash".to_string(), v)];
    report.push_series(
        "disagg pool rescues",
        "contexts revived from parked copies",
        &drow(degraded.pool_rescued as f64),
    );
    report.push_series("disagg rescue p99", "s", &drow(degraded.rescue_latency.p99.as_secs()));
    report.push_series("disagg shed", "requests", &drow(degraded.shed as f64));
    report.push_series("disagg availability", "fraction", &drow(degraded.availability));
    report.emit();
}
