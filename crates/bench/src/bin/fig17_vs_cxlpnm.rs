//! Figure 17: CENT vs Samsung CXL-PNM on OPT-66B (prefill 64, decode 1024).
use cent_baselines::PimNode;
use cent_bench::Report;
use cent_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::opt_66b();
    let ctx = 64 + 1024;
    let mut report = Report::new(
        "fig17",
        "CENT vs CXL-PNM on OPT-66B",
        "CENT (24 devices) reaches ~4.5x the throughput of CXL-PNM at max batches",
    );
    let mut rows = Vec::new();
    for devices in [1usize, 8, 32] {
        let node = PimNode::cxl_pnm(devices);
        let batch = node.max_batch(&cfg, ctx).min(256);
        rows.push((
            format!("CXL-PNM x{devices} (b{batch})"),
            node.decode_tokens_per_s(&cfg, batch, ctx) / 1000.0,
        ));
    }
    let cent = PimNode::cent(24);
    let batch = cent.max_batch(&cfg, ctx).min(256);
    rows.push((
        format!("CENT x24 (b{batch})"),
        cent.decode_tokens_per_s(&cfg, batch, ctx) / 1000.0,
    ));
    report.push_series("decode throughput", "K tokens/s", &rows);
    report.emit();
}
