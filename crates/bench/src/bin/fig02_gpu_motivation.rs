//! Figure 2: (a) GPU query latency growth with batch; (b) compute
//! utilization of Llama2-70B vs BERT vs ResNet-152.
use cent_baselines::{encoder_utilization, GpuSystem};
use cent_bench::Report;
use cent_model::ModelConfig;

fn main() {
    let sys = GpuSystem::a100x(4);
    let cfg = ModelConfig::llama2_70b();
    let mut report = Report::new(
        "fig02",
        "GPU motivation: latency growth and low utilization",
        "(a) latency rises with batch, violating SLA past ~batch 128; (b) Llama2-70B 21% vs BERT 43% vs ResNet-152 80%",
    );
    let latency: Vec<(String, f64)> = [8usize, 16, 32, 64, 128]
        .iter()
        .map(|&b| {
            let t = sys.query_latency(&cfg, b, 4096, 512, 3584);
            (format!("batch {b}"), t.as_secs() / 60.0)
        })
        .collect();
    report.push_series("query latency", "minutes", &latency);
    let util = vec![
        ("Llama2-70B".to_string(), sys.decode_utilization(&cfg, 128, 4096) * 100.0),
        ("BERT".to_string(), encoder_utilization("BERT") * 100.0),
        ("ResNet-152".to_string(), encoder_utilization("ResNet-152") * 100.0),
    ];
    report.push_series("GPU compute utilization", "%", &util);
    report.emit();
}
