//! Figure 12: CXL controller NRE breakdown and per-unit cost vs volume.
use cent_bench::Report;
use cent_cost::{ControllerCost, NreBreakdown};

fn main() {
    let nre = NreBreakdown::default();
    let mut report = Report::new(
        "fig12",
        "CXL controller cost breakdown",
        "NRE ~$25M total; per-unit cost $11.9 at 3M volume, die+packaging < $4",
    );
    report.push_series(
        "NRE breakdown",
        "M$",
        &[
            ("System NRE".into(), nre.system_nre.amount() / 1e6),
            ("Package design".into(), nre.package_design.amount() / 1e6),
            ("IP licensing".into(), nre.ip_licensing.amount() / 1e6),
            ("Frontend labor".into(), nre.frontend_labor.amount() / 1e6),
            ("Backend CAD".into(), nre.backend_cad.amount() / 1e6),
            ("Backend labor".into(), nre.backend_labor.amount() / 1e6),
            ("Mask".into(), nre.mask.amount() / 1e6),
            ("Total".into(), nre.total().amount() / 1e6),
        ],
    );
    let volumes = [0.25e6, 0.5e6, 1.0e6, 2.0e6, 3.0e6, 4.0e6, 5.0e6];
    let curve: Vec<(String, f64)> = volumes
        .iter()
        .map(|&v| (format!("{:.2}M units", v / 1e6), ControllerCost::at_volume(v).total().amount()))
        .collect();
    report.push_series("unit cost vs volume", "$", &curve);
    let at3m = ControllerCost::at_volume(3.0e6);
    report.push_series(
        "cost components at 3M",
        "$",
        &[
            ("die".into(), at3m.die.amount()),
            ("packaging".into(), at3m.packaging.amount()),
            ("NRE amortised".into(), at3m.nre.amount()),
            ("total".into(), at3m.total().amount()),
        ],
    );
    report.emit();
}
