//! Table 5: CXL controller custom logic area and power at 28 nm.
use cent_bench::Report;

fn main() {
    let mut report = Report::new(
        "table5",
        "CXL controller custom logic (28 nm synthesis)",
        "total 7.85 mm² / 1.06 W; instruction buffer dominates area",
    );
    let rows = [
        ("SRAM instruction buffer", 3.33, 0.61),
        ("Shared buffer", 0.11, 0.03),
        ("Accelerators", 1.34, 0.18),
        ("RISC-V cores", 2.94, 0.19),
        ("Others", 0.12, 0.05),
    ];
    let area: Vec<(String, f64)> = rows.iter().map(|r| (r.0.to_string(), r.1)).collect();
    let power: Vec<(String, f64)> = rows.iter().map(|r| (r.0.to_string(), r.2)).collect();
    report.push_series("area", "mm^2", &area);
    report.push_series("power", "W", &power);
    let total_area: f64 = rows.iter().map(|r| r.1).sum();
    let total_power: f64 = rows.iter().map(|r| r.2).sum();
    report.push_series(
        "total",
        "mm^2 / W",
        &[("area".into(), total_area), ("power".into(), total_power)],
    );
    report.emit();
    assert!((total_area - 7.84).abs() < 0.05);
    assert!((total_power - 1.06).abs() < 0.01);
}
