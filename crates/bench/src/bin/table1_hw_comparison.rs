//! Table 1: industrial PIM prototypes vs an A100.
use cent_baselines::table1;
use cent_bench::Report;

fn main() {
    let mut report = Report::new(
        "table1",
        "Hardware system comparison",
        "AiM: 16 TB/s internal vs A100 2 TB/s external; PIM density 25-75%",
    );
    let rows = table1();
    report.push_series(
        "internal bandwidth",
        "TB/s",
        &rows
            .iter()
            .map(|r| (r.name.to_string(), r.internal_bw_tbs.unwrap_or(0.0)))
            .collect::<Vec<_>>(),
    );
    report.push_series(
        "compute",
        "TFLOPS",
        &rows.iter().map(|r| (r.name.to_string(), r.tflops)).collect::<Vec<_>>(),
    );
    report.push_series(
        "ops per byte",
        "Ops/B",
        &rows.iter().map(|r| (r.name.to_string(), r.ops_per_byte)).collect::<Vec<_>>(),
    );
    for r in &rows {
        println!(
            "{:>9}: {:>10} | ext {:>5} TB/s | cap {:>5} GB | density {}",
            r.name, r.mem_units, r.external_bw_tbs, r.capacity_gb, r.mem_density
        );
    }
    report.emit();
}
