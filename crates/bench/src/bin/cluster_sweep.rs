//! Cluster router policy × offered load sweep: fleet-wide tail latency,
//! balance and utilization for a fleet of the paper's PP/8 deployments.
//!
//! Sweeps the four [`RoutingPolicy`] implementations (join-shortest-queue,
//! seeded power-of-two choices, round-robin, session-affinity hashing)
//! across diurnal offered-load points anchored on the fleet's aggregate
//! `capacity_qps`. The trace is generated once at the top rate with
//! ShareGPT-like heterogeneous lengths — the regime where load-blind
//! routing pays at the tail — and every lower point derives its trace by
//! exact Poisson thinning, so the whole sweep shares one generation and is
//! bit-for-bit reproducible.
//!
//! Prints the paper-style table and writes `results/BENCH_cluster.json`.
//! Run with `cargo run --release -p cent-bench --bin cluster_sweep`; pass
//! `--smoke` for the CI mode (32 groups, two load points, a two-minute
//! diurnal period) which also asserts conservation — every generated
//! request routed, served and reported exactly once per point.

use cent_bench::Report;
use cent_cluster::{
    simulate_fleet, FleetOptions, FleetReport, JoinShortestQueue, PowerOfTwoChoices, RoundRobin,
    RoutingPolicy, SessionAffinity,
};
use cent_model::ModelConfig;
use cent_serving::{LengthSampler, LoadCurve, ServingSystem, Workload};
use cent_types::Time;

/// Router factories: each sweep point gets a fresh router so per-point
/// results never depend on sweep order.
fn routers() -> Vec<(&'static str, Box<dyn RoutingPolicy>)> {
    vec![
        ("jsq", Box::new(JoinShortestQueue)),
        ("p2c", Box::new(PowerOfTwoChoices::seeded(0xD1CE))),
        ("rr", Box::new(RoundRobin::default())),
        ("affinity", Box::new(SessionAffinity)),
    ]
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let (groups, horizon_s) = if smoke { (32, 120.0) } else { (256, 1800.0) };
    let loads: &[f64] = if smoke { &[0.6, 1.0] } else { &[0.4, 0.6, 0.8, 1.0] };

    // ShareGPT-like lengths (heavy decode tail): heterogeneous request
    // sizes are what separate load-aware from load-blind routing. The
    // capacity anchor uses the mix's mean shape; the diurnal curve swings
    // the instantaneous rate between 0.5x and 1.5x of each point's base.
    let (mean_prompt, mean_decode) = (160, 210);
    let fleet_capacity = groups as f64 * system.capacity_qps(mean_prompt, mean_decode);
    let max_load = *loads.last().expect("non-empty sweep");
    let curve = LoadCurve::diurnal(horizon_s, 0.5, 1.5);
    let workload = Workload {
        lengths: LengthSampler::ShareGpt,
        ..Workload::chatbot(max_load * fleet_capacity, 0xF1EE7)
    };
    let horizon = Time::from_secs_f64(horizon_s);
    let base = workload.generate_modulated(horizon, 4096, &curve, 99);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let opts =
        FleetOptions::new(groups).with_threads(threads).with_epoch(Time::from_secs_f64(0.25));
    println!(
        "{groups}-group fleet | capacity {fleet_capacity:.0} q/s | diurnal 0.5-1.5x over \
         {horizon} | {} requests at {max_load:.1}x\n",
        base.len()
    );

    // (policy, load) -> FleetReport, loads outermost so each point's
    // thinned trace and session assignment are shared by all four routers.
    let mut results: Vec<(&'static str, Vec<(String, FleetReport)>)> =
        routers().into_iter().map(|(name, _)| (name, Vec::new())).collect();
    for &load in loads {
        let mut trace = if load == max_load {
            base.clone()
        } else {
            Workload::thin_trace(&base, load / max_load, 0xF1EE7 ^ load.to_bits())
        };
        // Sessions make the affinity router meaningful (and are inert for
        // the load-aware policies): ~8 concurrent sessions per group.
        Workload::assign_sessions(&mut trace, groups as u64 * 8, 0xBEEF);
        let offered = load * fleet_capacity;
        for (slot, (name, mut router)) in results.iter_mut().zip(routers()) {
            let start = std::time::Instant::now();
            let report = simulate_fleet(&system, &trace, offered, router.as_mut(), &opts);
            println!(
                "{load:.1}x {name:>8}: TTFT p99 {} | latency p99 {} | imbalance \
                 {:.2}-{:.2}x | {:.2?}",
                report.ttft.p99,
                report.query_latency.p99,
                report.imbalance.min_share,
                report.imbalance.max_share,
                start.elapsed(),
            );
            assert_eq!(slot.0, name);
            if smoke {
                assert_eq!(report.submitted, trace.len(), "{name} {load}x lost arrivals");
                assert_eq!(
                    report.completed + report.rejected,
                    trace.len(),
                    "{name} {load}x: requests neither completed nor rejected"
                );
            }
            slot.1.push((format!("{load:.1}x"), report));
        }
    }

    let mut report = Report::new(
        "BENCH_cluster",
        if smoke {
            "Cluster router sweep (smoke): 32-group PP/8 fleet, diurnal ShareGPT mix"
        } else {
            "Cluster router sweep: 256-group PP/8 fleet, diurnal ShareGPT mix"
        },
        "the paper serves one CENT deployment; this sweep scales the serving study to a \
         routed fleet — load-aware routing holds the diurnal-peak tail that round-robin pays",
    );
    for (name, rows) in &results {
        let series = |f: &dyn Fn(&FleetReport) -> f64| -> Vec<(String, f64)> {
            rows.iter().map(|(x, r)| (x.clone(), f(r))).collect()
        };
        report.push_series(&format!("{name} TTFT p99"), "s", &series(&|r| r.ttft.p99.as_secs()));
        report.push_series(
            &format!("{name} query latency p99"),
            "s",
            &series(&|r| r.query_latency.p99.as_secs()),
        );
        report.push_series(
            &format!("{name} router imbalance"),
            "max/mean submitted",
            &series(&|r| r.imbalance.max_share),
        );
        report.push_series(
            &format!("{name} slot utilization"),
            "mean fraction",
            &series(&|r| r.slot_utilization.mean),
        );
    }
    report.emit();
}
