//! Figure 19: CENT scalability on Llama2-70B, 16 → 128 devices (PP + DP),
//! with the utilization plateaus caused by whole-block placement.
use cent_bench::Report;
use cent_model::ModelConfig;
use cent_sim::scalability_sweep;

fn main() {
    let cfg = ModelConfig::llama2_70b();
    let counts = [16usize, 27, 32, 40, 44, 54, 64, 80, 96, 128];
    let mut report = Report::new(
        "fig19",
        "CENT scalability (Llama2-70B)",
        "0.68K tokens/s at 16 devices to 5.7K at 128; throughput plateaus where 80 blocks divide unevenly",
    );
    match scalability_sweep(&cfg, &counts, 4096) {
        Ok(points) => {
            let tput: Vec<(String, f64)> = points
                .iter()
                .map(|p| (format!("{} devices", p.devices), p.tokens_per_s / 1000.0))
                .collect();
            let util: Vec<(String, f64)> =
                points.iter().map(|p| (format!("{} devices", p.devices), p.utilization)).collect();
            report.push_series("decode throughput", "K tokens/s", &tput);
            report.push_series("device utilization", "fraction", &util);
        }
        Err(e) => eprintln!("scalability sweep failed: {e}"),
    }
    report.emit();
}
