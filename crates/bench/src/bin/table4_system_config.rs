//! Table 4: CENT vs GPU system configuration including 3-year TCO.
use cent_bench::Report;
use cent_cost::{rental, HardwareCosts, Tco};
use cent_types::Power;

fn main() {
    let mut report = Report::new(
        "table4",
        "System configurations and TCO",
        "CENT 512 GB / 512+96 TFLOPS / 512 TB/s internal; owned TCO 0.73 vs 1.76 $/h; rental 1.05 vs 5.45 $/h",
    );
    let hw = HardwareCosts::default();
    // Average powers: 27 active CENT devices ≈32 W + 5 idle + host; GPU near TDP.
    let cent_power = Power::watts(27.0 * 32.4 + 5.0 * 8.0 + 185.0);
    let gpu_power = Power::watts(4.0 * 300.0 + 185.0);
    let cent = Tco::owned(hw.cent_system(32, 3.0e6), cent_power);
    let gpu = Tco::owned(hw.gpu_system(4), gpu_power);
    report.push_series(
        "compute throughput",
        "TFLOPS",
        &[("CENT PIM".into(), 512.0), ("CENT PNM".into(), 96.0), ("GPU".into(), 1248.0)],
    );
    report.push_series(
        "peak bandwidth",
        "TB/s",
        &[("CENT internal".into(), 512.0), ("GPU external".into(), 8.0)],
    );
    report.push_series(
        "3-year owned TCO",
        "$/hour",
        &[("CENT".into(), cent.per_hour().amount()), ("GPU".into(), gpu.per_hour().amount())],
    );
    report.push_series(
        "3-year rental TCO",
        "$/hour",
        &[
            ("CENT".into(), rental::HOST_CPU_PER_HOUR.amount() + cent.per_hour().amount()),
            ("GPU".into(), rental::GPU_4XA100_PER_HOUR.amount()),
        ],
    );
    report.emit();
}
