//! Figure 13: CENT speedup over the GPU baseline — (a) latency-critical
//! batch-1 TP, (b) throughput-critical PP at max batches, (c) tokens/$.
use cent_baselines::GpuSystem;
use cent_bench::{geomean, Report};
use cent_compiler::Strategy;
use cent_cost::tokens_per_dollar;
use cent_model::ModelConfig;
use cent_sim::evaluate;
use cent_types::Dollars;

fn main() {
    let ctx = 4096usize;
    let cases: [(ModelConfig, usize, usize); 3] = [
        (ModelConfig::llama2_7b(), 8, 1),
        (ModelConfig::llama2_13b(), 20, 2),
        (ModelConfig::llama2_70b(), 32, 4),
    ];
    let mut report = Report::new(
        "fig13",
        "CENT vs GPU: latency, throughput, tokens/$",
        "geomean 4.6x latency (batch 1), 2.3x throughput (max batch), 5.2x tokens/$; 70B throughput gain smallest (GQA, 1.2x)",
    );
    let mut lat_speedups = Vec::new();
    let mut tput_speedups = Vec::new();
    let mut dollar_speedups = Vec::new();
    let mut lat_rows = Vec::new();
    let mut tput_rows = Vec::new();
    let mut dollar_rows = Vec::new();
    // TCO $/hour (Table 4 values recomputed in table4 binary).
    let cent_cost = Dollars::new(0.73);
    let gpu_cost = Dollars::new(1.76);
    for (cfg, devices, gpus) in cases {
        let gpu = GpuSystem::a100x(gpus);
        // (a) latency-critical: batch 1, TP on CENT.
        let cent_tp =
            evaluate(&cfg, devices, Strategy::TensorParallel, ctx).expect("tp evaluation");
        let gpu_tok_latency = 1.0 / gpu.decode_tokens_per_s(&cfg, 1, ctx).max(1e-9);
        let cent_tok_latency = cent_tp.token_latency.as_secs();
        let lat_speedup = gpu_tok_latency / cent_tok_latency;
        lat_rows.push((cfg.name.to_string(), lat_speedup));
        lat_speedups.push(lat_speedup);
        // (b) throughput-critical: GPU batch 128, CENT PP (batch = stages).
        let cent_pp =
            evaluate(&cfg, devices, Strategy::PipelineParallel, ctx).expect("pp evaluation");
        let gpu_batch = 128.min(gpu.max_batch(&cfg, ctx).max(1));
        let gpu_tput = gpu.decode_tokens_per_s(&cfg, gpu_batch, ctx);
        let speedup = cent_pp.decode_tokens_per_s / gpu_tput;
        tput_rows.push((cfg.name.to_string(), speedup));
        tput_speedups.push(speedup);
        // (c) tokens per dollar.
        let cent_tpd = tokens_per_dollar(cent_pp.decode_tokens_per_s, cent_cost);
        let gpu_tpd = tokens_per_dollar(gpu_tput, gpu_cost);
        dollar_rows.push((cfg.name.to_string(), cent_tpd / gpu_tpd));
        dollar_speedups.push(cent_tpd / gpu_tpd);
        eprintln!(
            "{}: CENT PP {:.0} tok/s (batch {}), GPU {:.0} tok/s (batch {gpu_batch})",
            cfg.name, cent_pp.decode_tokens_per_s, cent_pp.mapping.batch, gpu_tput
        );
    }
    lat_rows.push(("geomean".into(), geomean(&lat_speedups)));
    tput_rows.push(("geomean".into(), geomean(&tput_speedups)));
    dollar_rows.push(("geomean".into(), geomean(&dollar_speedups)));
    report.push_series("(a) latency speedup, batch=1", "x", &lat_rows);
    report.push_series("(b) end-to-end throughput speedup", "x", &tput_rows);
    report.push_series("(c) tokens per dollar", "x", &dollar_rows);
    report.emit();
}
