//! Ablations of the design choices DESIGN.md calls out.
use cent_bench::Report;
use cent_compiler::{compile_decode_step, BlockPlacement, Strategy};
use cent_cxl::{CxlFabric, FabricConfig, NodeId};
use cent_isa::analyze;
use cent_model::ModelConfig;
use cent_sim::evaluate;
use cent_types::{ByteSize, ChannelId, DeviceId, Time};

fn main() {
    let mut report = Report::new(
        "ablations",
        "Design-choice ablations",
        "hierarchical PIM-PNM (>99% MAC FLOPs), multicast switch benefit, GQA effect, PP batching, TP attention placement",
    );

    // 1. Hierarchical PIM-PNM: MAC share of arithmetic FLOPs in a real trace.
    let cfg = ModelConfig::llama2_7b();
    let channels: Vec<ChannelId> = (0..8).map(ChannelId).collect();
    let placement = BlockPlacement::plan(&cfg, channels).expect("placement");
    let step = compile_decode_step(&placement, 2047).expect("compile");
    let stats = analyze(&step.trace);
    report.push_series(
        "PIM-PNM split (Llama2-7B block @2K ctx)",
        "fraction / count",
        &[
            ("MAC FLOP fraction".into(), stats.mac_flop_fraction()),
            ("PIM instructions".into(), stats.pim_instructions as f64),
            ("PNM instructions".into(), stats.pnm_instructions as f64),
        ],
    );

    // 2. Multicast switch vs serial unicast for a 31-way broadcast.
    let payload = ByteSize::kib(16);
    let targets: Vec<DeviceId> = (1..32).map(DeviceId).collect();
    let mut mc = CxlFabric::new(FabricConfig::cent(32));
    let bcast = mc.broadcast(NodeId::Device(DeviceId(0)), &targets, payload, Time::ZERO).unwrap();
    let mut uc = CxlFabric::new(FabricConfig::without_multicast(32));
    let mut serial = Time::ZERO;
    for &d in &targets {
        serial = uc
            .write(NodeId::Device(DeviceId(0)), NodeId::Device(d), payload, serial)
            .unwrap()
            .completed_at;
    }
    report.push_series(
        "multicast vs serial unicast (16 KB to 31 devices)",
        "us",
        &[
            ("multicast switch".into(), bcast.completed_at.as_us()),
            ("serial unicast".into(), serial.as_us()),
        ],
    );

    // 3. GQA vs MHA memory effect (the reason CENT's 70B edge shrinks).
    let mha = ModelConfig { kv_heads: 64, name: "Llama2-70B-MHA", ..ModelConfig::llama2_70b() };
    let gqa = ModelConfig::llama2_70b();
    report.push_series(
        "GQA KV cache per query @4K",
        "GiB",
        &[
            ("GQA (8 kv heads)".into(), gqa.kv_bytes_per_query(4096).as_gib()),
            ("MHA (64 kv heads)".into(), mha.kv_bytes_per_query(4096).as_gib()),
        ],
    );

    // 4. TP attention placement: CXL traffic if attention were distributed
    //    (AllReduce per head group) vs confined to the master device.
    let plan = cent_compiler::SystemMapping::plan(&gqa, 32, Strategy::TensorParallel).unwrap();
    let confined = plan.tp_traffic_per_block().as_bytes() as f64 / 1024.0;
    // Distributing attention adds an AllReduce of the full embedding per
    // attention sublayer: 2 × hidden × 2 B × (tp-1)/tp per device, per block.
    let allreduce = 2.0 * (gqa.hidden as f64) * 2.0 * 31.0 / 32.0 * 32.0 / 1024.0;
    report.push_series(
        "TP CXL traffic per block",
        "KiB",
        &[
            ("attention on master (paper)".into(), confined),
            ("attention distributed (+AllReduce)".into(), confined + allreduce),
        ],
    );

    // 5. Batching on top of PP: PP already saturates PIM; batching b queries
    //    per stage multiplies the stage interval by ~b without adding
    //    throughput (§5.1).
    if let Ok(pp) = evaluate(&ModelConfig::tiny(), 2, Strategy::PipelineParallel, 32) {
        let t1 = pp.block.total.as_us();
        report.push_series(
            "PP intra-stage batching (tiny model)",
            "us per stage",
            &[
                ("batch 1 / stage (paper)".into(), t1),
                ("batch 4 / stage (modelled)".into(), t1 * 4.0),
            ],
        );
    }
    report.emit();
}
