//! Disaggregated prefill/decode sweep: throughput, handoff tails and
//! shared-pool pressure vs the prefill/decode group split on a fleet of
//! the paper's PP/8 deployments.
//!
//! Each configuration serves the same ShareGPT-like trace: the colocated
//! baseline runs every group as a full-service deployment, while the
//! split points route prompts to a prefill tier (chunked prefill so long
//! prompts interleave), publish the finished contexts into a bounded
//! switch-attached KV pool at a costed switch-hop price, and stream the
//! decode remainder on a decode tier that claims — and steals — from the
//! pool. The sweep shows where specialisation pays (TTFT under prompt
//! pressure) and what it costs (handoff latency, pool occupancy).
//!
//! Prints the comparison table and writes `results/BENCH_disagg.json`.
//! Run with `cargo run --release -p cent-bench --bin disagg_sweep`; pass
//! `--smoke` for the CI mode (shorter trace, colocated + one split),
//! which also asserts the disaggregation invariants: handoffs actually
//! engaged, the pool capacity bound was never exceeded, the colocated
//! configuration reproduces the base fleet driver bit for bit, and the
//! split fleet is bit-identical across 1 vs 2 worker threads.

use cent_bench::Report;
use cent_cluster::{
    simulate_fleet_disagg, simulate_fleet_instrumented, DisaggConfig, DisaggOutcome, FleetOptions,
    JoinShortestQueue,
};
use cent_cxl::FabricConfig;
use cent_model::ModelConfig;
use cent_serving::{LengthSampler, ServingSystem, Workload};
use cent_types::Time;

/// Extra switch hops a pool-resident page traverses versus a direct host
/// link (prefill device → switch → pool, pool → switch → decode device).
const POOL_SWITCH_HOPS: u32 = 2;

fn run(
    system: &ServingSystem,
    trace: &[cent_serving::RequestSpec],
    offered: f64,
    opts: &FleetOptions,
    cfg: &DisaggConfig,
    threads: usize,
) -> DisaggOutcome {
    let mut router = JoinShortestQueue;
    simulate_fleet_disagg(
        system,
        trace,
        offered,
        &mut router,
        &opts.clone().with_threads(threads),
        cfg,
    )
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let cfg = ModelConfig::llama2_7b();
    let system = ServingSystem::plan(&cfg, 8, cent_compiler::Strategy::PipelineParallel, 4096)
        .expect("planning Llama2-7B on 8 devices");
    let groups = 8usize;
    let horizon_s = if smoke { 60.0 } else { 240.0 };

    // ShareGPT-like lengths at 0.6x of the colocated fleet capacity:
    // enough pressure that the prefill tier queues and the pool sees
    // sustained traffic, with headroom so every split still drains.
    let (mean_prompt, mean_decode) = (160, 210);
    let offered = 0.6 * groups as f64 * system.capacity_qps(mean_prompt, mean_decode);
    let workload =
        Workload { lengths: LengthSampler::ShareGpt, ..Workload::chatbot(offered, 0xD15A) };
    let trace = workload.generate(Time::from_secs_f64(horizon_s), 4096);
    let opts = FleetOptions::new(groups).with_epoch(Time::from_secs_f64(0.25));

    // The pool holds ~32 mean contexts: generous enough that deferral is
    // backpressure, not the steady state.
    let pool_tokens = 32 * (mean_prompt as u64 + 1);
    let handoff_cost =
        system.swap_cost().with_switch_hops(POOL_SWITCH_HOPS, &FabricConfig::cent(32));
    let splits: &[(usize, usize)] =
        if smoke { &[(4, 4)] } else { &[(2, 6), (3, 5), (4, 4), (5, 3), (6, 2)] };

    println!(
        "{groups}-group PP/8 fleet | {} requests at 0.6x capacity | pool {pool_tokens} tokens | \
         chunked prefill 512\n",
        trace.len()
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>9} {:>8} {:>9} {:>12} {:>10}",
        "config",
        "tok/s",
        "ttft p99",
        "tbt p99",
        "handoffs",
        "steals",
        "deferred",
        "handoff p99",
        "pool peak"
    );

    let mut rows: Vec<(String, DisaggOutcome)> = Vec::new();

    // Colocated baseline first: the degenerate configuration must be the
    // base fleet driver bit for bit — checked in smoke mode, reported in
    // both.
    let colocated = run(&system, &trace, offered, &opts, &DisaggConfig::colocated(groups), 1);
    if smoke {
        let mut router = JoinShortestQueue;
        let base = simulate_fleet_instrumented(&system, &trace, offered, &mut router, &opts);
        assert_eq!(
            colocated.report, base.report,
            "colocated disagg config must reproduce the base driver's report"
        );
        assert_eq!(
            colocated.routed, base.routed,
            "colocated disagg config must reproduce the base driver's routing"
        );
    }
    rows.push(("colocated".to_string(), colocated));

    for &(prefill, decode) in splits {
        let dcfg =
            DisaggConfig::split(prefill, decode, pool_tokens, handoff_cost).with_prefill_chunk(512);
        let out = run(&system, &trace, offered, &opts, &dcfg, 1);
        assert!(
            out.log.pool_peak_tokens <= out.log.pool_capacity_tokens,
            "{prefill}P/{decode}D: pool peak {} exceeded the {}-token bound",
            out.log.pool_peak_tokens,
            out.log.pool_capacity_tokens
        );
        if smoke {
            assert!(out.log.handoffs > 0, "{prefill}P/{decode}D: handoffs must engage");
            let threaded = run(&system, &trace, offered, &opts, &dcfg, 2);
            assert_eq!(
                (out.report.clone(), out.routed.clone(), out.log.clone()),
                (threaded.report, threaded.routed, threaded.log),
                "{prefill}P/{decode}D: split fleet diverged across 1 vs 2 worker threads"
            );
        }
        rows.push((format!("{prefill}P/{decode}D"), out));
    }

    for (label, out) in &rows {
        let d = out.report.disagg.as_ref();
        println!(
            "{:>12} {:>10.0} {:>9.3}s {:>9.4}s {:>9} {:>8} {:>9} {:>11.4}s {:>10}",
            label,
            out.report.tokens_per_s,
            out.report.ttft.p99.as_secs(),
            out.report.tbt.p99.as_secs(),
            d.map_or(0, |d| d.handoffs),
            d.map_or(0, |d| d.steals),
            d.map_or(0, |d| d.deferred_publishes),
            d.map_or(0.0, |d| d.handoff_latency.p99.as_secs()),
            d.map_or(0, |d| d.pool_peak_tokens),
        );
    }

    let mut report = Report::new(
        "BENCH_disagg",
        if smoke {
            "Disaggregated prefill/decode sweep (smoke): 8-group PP/8 fleet, shared KV pool"
        } else {
            "Disaggregated prefill/decode sweep: 8-group PP/8 fleet, shared KV pool"
        },
        "beyond the paper's colocated deployments: prefill/decode group specialisation over a \
         switch-attached CXL KV pool — throughput, TTFT/TBT tails, handoff latency and pool \
         pressure vs the tier split",
    );
    let series = |f: &dyn Fn(&DisaggOutcome) -> f64| -> Vec<(String, f64)> {
        rows.iter().map(|(x, o)| (x.clone(), f(o))).collect()
    };
    report.push_series("throughput", "tok/s", &series(&|o| o.report.tokens_per_s));
    report.push_series("ttft p99", "s", &series(&|o| o.report.ttft.p99.as_secs()));
    report.push_series("tbt p99", "s", &series(&|o| o.report.tbt.p99.as_secs()));
    report.push_series("handoffs", "contexts", &series(&|o| o.log.handoffs as f64));
    report.push_series("steals", "claims", &series(&|o| o.log.steals as f64));
    report.push_series("deferred publishes", "refusals", &series(&|o| o.log.deferred as f64));
    report.push_series(
        "handoff p99",
        "s",
        &series(&|o| o.report.disagg.as_ref().map_or(0.0, |d| d.handoff_latency.p99.as_secs())),
    );
    report.push_series(
        "pool peak",
        "fraction of capacity",
        &series(&|o| {
            if o.log.pool_capacity_tokens == 0 {
                0.0
            } else {
                o.log.pool_peak_tokens as f64 / o.log.pool_capacity_tokens as f64
            }
        }),
    );
    report.push_series(
        "pool occupancy",
        "mean fraction of capacity",
        &series(&|o| o.report.disagg.as_ref().map_or(0.0, |d| d.pool_occupancy)),
    );
    report.emit();
}
