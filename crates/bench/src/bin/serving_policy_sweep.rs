//! KV accounting modes, spill tiers and scheduling policies through
//! saturation: the serving-level counterpart of §5.4's capacity management
//! plus the swap-to-CXL KV tier.
//!
//! Runs the paper's chatbot mix (512/3584) and a ShareGPT-like mix through
//! a capacity-managed operating point — the per-replica KV budget is
//! constrained so full-reservation admission (4096 tokens held from a
//! query's first instant) is the binding constraint — and sweeps offered
//! load across the knee for six configurations:
//!
//! * full-reservation + FIFO (the pre-refactor baseline),
//! * token-granular + FIFO with each [`KvSpillMode`] (recompute-only,
//!   swap-to-CXL-only, cost-driven),
//! * token-granular + shortest-remaining-decode,
//! * token-granular + deadline-aware (least slack first).
//!
//! Token-granular admission packs roughly `budget / (prompt + decode/2)`
//! queries where full reservation packs `budget / (prompt + decode)`;
//! the swap tier then converts eviction stalls from re-prefill time into
//! CXL round trips whenever the host link is the cheaper side.
//!
//! Each `(mix, load)` trace is generated **once** and shared behind an
//! `Arc` across every configuration (trace generation rivals serving time
//! at the fast end of the sweep); the `config × load` grid runs in
//! parallel under `std::thread::scope`, rows print in serial order, so
//! the output is reproducible regardless of thread interleaving.
//!
//! Pass `--smoke` for the CI mode: a synthetic KV-starved deployment, one
//! saturated load, all three spill modes — asserting the swap path really
//! ran — written to `results/serving_policy_sweep_smoke.json`.
use std::sync::Arc;

use cent_bench::Report;
use cent_model::ModelConfig;
use cent_serving::{
    ArrivalProcess, DeadlineAware, KvBudget, KvMode, KvSpillConfig, KvSpillMode, LengthSampler,
    RequestSpec, SchedulerConfig, ServeOptions, ServingReport, ServingSystem,
    ShortestRemainingDecode, TickEngine, Workload,
};
use cent_types::Time;

const LOADS: [f64; 4] = [0.5, 0.8, 1.0, 1.3];
const HORIZON_S: f64 = 600.0;
const SEED: u64 = 0xCE27;

struct Mix {
    name: &'static str,
    lengths: LengthSampler,
    /// Nominal (prompt, decode) shape used to anchor capacity and the SLO.
    prompt: usize,
    decode: usize,
}

/// The swept configurations, each built exactly once per mix and cloned
/// per operating point.
fn configs(slo: Time, spill: KvSpillConfig) -> Vec<(&'static str, ServeOptions)> {
    vec![
        // The default policy is FIFO in both KV modes.
        ("full+fifo", ServeOptions::default().with_slo(slo)),
        ("token+fifo", ServeOptions::token_granular().with_slo(slo)),
        (
            "token+swap",
            ServeOptions::token_granular()
                .with_spill(spill.with_mode(KvSpillMode::SwapOnly))
                .with_slo(slo),
        ),
        (
            "token+cost",
            ServeOptions::token_granular()
                .with_spill(spill.with_mode(KvSpillMode::CostDriven))
                .with_slo(slo),
        ),
        (
            "token+srd",
            ServeOptions::token_granular()
                .with_policy(Box::new(ShortestRemainingDecode))
                .with_slo(slo),
        ),
        (
            "token+deadline",
            ServeOptions::token_granular()
                .with_policy(Box::new(DeadlineAware { slo }))
                .with_slo(slo),
        ),
    ]
}

/// Runs one `config × load` grid over shared traces and returns the cells
/// in `(config, load)` order.
fn run_grid(
    system: &ServingSystem,
    configs: &[(&'static str, ServeOptions)],
    traces: &[Arc<Vec<RequestSpec>>],
    rates: &[f64],
) -> Vec<ServingReport> {
    let mut cells: Vec<Option<ServingReport>> = vec![None; configs.len() * rates.len()];
    std::thread::scope(|scope| {
        for (idx, cell) in cells.iter_mut().enumerate() {
            let (_, options) = &configs[idx / rates.len()];
            let rate = rates[idx % rates.len()];
            let trace = Arc::clone(&traces[idx % rates.len()]);
            // The span-fast-forward engine is bit-identical to the default
            // bucketed core (enforced by tests/serving_props.rs) and jumps
            // deterministic decode spans, so the grid sweeps faster.
            let options = options.clone().with_engine(TickEngine::SpanFastForward);
            scope.spawn(move || {
                *cell = Some(system.serve_trace_with(&trace, rate, options));
            });
        }
    });
    cells.into_iter().map(|c| c.expect("cell completed")).collect()
}

fn print_header() {
    println!(
        "{:>16} {:>6} {:>10} {:>7} {:>9} {:>10} {:>8} {:>6} {:>9}",
        "config", "load", "tokens/s", "slots", "KV mean", "p99 lat", "preempt", "swaps", "goodput"
    );
}

fn print_row(config: &str, load: f64, r: &ServingReport) {
    println!(
        "{:>16} {:>5.2}x {:>10.0} {:>6.0}% {:>8.0}% {:>10} {:>8} {:>6} {:>9.3}",
        config,
        load,
        r.tokens_per_s,
        100.0 * r.slot_utilization,
        100.0 * r.kv_utilization,
        r.query_latency.p99,
        r.preemptions,
        r.swaps,
        r.goodput_qps,
    );
}

/// CI smoke: a synthetic KV-starved deployment at one saturated load with
/// all three spill modes, small enough to run in seconds.
fn smoke() {
    let system = ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: 8,
            // Budget for ~2.7 full 288-token contexts across 8 slots.
            kv_budget: KvBudget::tokens(768),
            kv: KvMode::FullReservation,
        },
        Time::from_us(1000),
        1000.0,
        8000.0,
    );
    let capacity = system.capacity_qps(32, 256);
    let slo = Time::from_secs_f64(2.0 * 256.0 * 1e-3);
    let spill = KvSpillConfig::cost_driven(4 * 768, system.swap_cost());
    let configs: Vec<(&'static str, ServeOptions)> = KvSpillMode::ALL
        .iter()
        .map(|&mode| {
            (mode.name(), ServeOptions::token_granular().with_spill(spill.with_mode(mode)))
        })
        .collect();
    let w = Workload {
        arrivals: ArrivalProcess::Poisson { rate_qps: 1.5 * capacity },
        lengths: LengthSampler::Fixed { prompt: 32, decode: 256 },
        seed: SEED,
        classes: cent_serving::ClassMix::two_tier(0.5),
    };
    let traces = vec![Arc::new(w.generate(Time::from_secs_f64(20.0), 4096))];
    let cells = run_grid(&system, &configs, &traces, &[1.5 * capacity]);

    let mut report = Report::new(
        "serving_policy_sweep_smoke",
        "KV spill modes at a saturated KV-starved point (synthetic 1x8-slot deployment)",
        "all three KvSpillModes drain the same trace; swap-capable modes divert \
         evictions to the CXL host pool",
    );
    println!("smoke: capacity {capacity:.3} q/s | budget 768 tokens | SLO {slo}");
    print_header();
    let mut series: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for ((name, _), r) in configs.iter().zip(&cells) {
        print_row(name, 1.5, r);
        assert_eq!(r.completed, r.submitted - r.rejected, "{name}: requests lost");
        if *name != "recompute" {
            assert!(r.swaps > 0, "{name}: swap tier never engaged");
        } else {
            assert_eq!(r.swaps, 0, "recompute-only must not swap");
        }
        series.push((
            format!("spill {name}"),
            vec![
                ("tokens/s".into(), r.tokens_per_s),
                ("goodput".into(), r.goodput_qps),
                ("preemptions".into(), r.preemptions as f64),
                ("swaps".into(), r.swaps as f64),
                ("stall_s".into(), r.eviction_stall().as_secs()),
            ],
        ));
    }
    for (name, points) in &series {
        report.push_series(name, "mixed", points);
    }
    report.emit();
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    let system =
        ServingSystem::plan(&cfg, devices, cent_compiler::Strategy::PipelineParallel, 4096)
            .expect("planning Llama2-7B on 8 devices");
    // Capacity-managed operating point: budget for a third of the slots at
    // full 4096-token context, so reservation strategy decides concurrency.
    let slots_per_replica = system.total_slots() / system.replicas();
    let budget = KvBudget::tokens((slots_per_replica as u64 * 4096).div_ceil(3));
    let system = system.with_kv_budget(budget);
    let steady = system.steady_state_tokens_per_s();
    // Steady state runs all slots; per-token cadence = slots / steady.
    let token_interval_s = system.total_slots() as f64 / steady;
    // Host pool sized at 4x the device budget, costed by the deployment's
    // own footprint over the paper's CXL host link.
    let spill = KvSpillConfig::cost_driven(4 * budget.tokens, system.swap_cost());

    let mixes = [
        Mix { name: "chatbot", lengths: LengthSampler::Chatbot, prompt: 512, decode: 3584 },
        Mix { name: "sharegpt", lengths: LengthSampler::ShareGpt, prompt: 164, decode: 222 },
    ];

    let mut report = Report::new(
        "serving_policy_sweep",
        "KV accounting × spill tier × scheduling policy through saturation (Llama2-7B, \
         8 devices, capacity-managed KV budget)",
        "token-granular occupancy admits more concurrent queries than full \
         reservation (§5.4 capacity management); the cost-driven swap tier \
         converts recompute stalls into cheaper CXL round trips",
    );

    for mix in &mixes {
        let capacity = system.capacity_qps(mix.prompt, mix.decode);
        // SLO: 2x the uncontended service time of the nominal shape.
        let slo = Time::from_secs_f64(2.0 * mix.decode as f64 * token_interval_s);
        let configs = configs(slo, spill);
        println!(
            "{} mix: capacity {capacity:.3} q/s | KV budget {} tokens/replica | host pool {} \
             | SLO {slo}",
            mix.name, budget.tokens, spill.host_pool_tokens,
        );
        print_header();
        // One trace per load, generated once and shared across configs.
        let rates: Vec<f64> = LOADS.iter().map(|load| load * capacity).collect();
        let traces: Vec<Arc<Vec<RequestSpec>>> = rates
            .iter()
            .map(|&rate| {
                let w = Workload {
                    arrivals: ArrivalProcess::Poisson { rate_qps: rate },
                    lengths: mix.lengths,
                    seed: SEED,
                    classes: cent_serving::ClassMix::default(),
                };
                Arc::new(w.generate(Time::from_secs_f64(HORIZON_S), 4096))
            })
            .collect();
        let cells = run_grid(&system, &configs, &traces, &rates);
        let mut series: Vec<(String, Vec<(String, f64)>)> = Vec::new();
        for (ci, (config, _)) in configs.iter().enumerate() {
            let mut tokens = Vec::new();
            let mut goodput = Vec::new();
            let mut util = Vec::new();
            for (li, load) in LOADS.iter().enumerate() {
                let r = &cells[ci * LOADS.len() + li];
                print_row(config, *load, r);
                let label = format!("{load:.2}x");
                tokens.push((label.clone(), r.tokens_per_s));
                goodput.push((label.clone(), r.goodput_qps));
                util.push((label, r.slot_utilization));
            }
            series.push((format!("{} tokens/s [{config}]", mix.name), tokens));
            series.push((format!("{} goodput [{config}]", mix.name), goodput));
            series.push((format!("{} slot util [{config}]", mix.name), util));
        }
        println!();
        for (name, points) in &series {
            let unit = if name.contains("tokens/s") {
                "tokens/s"
            } else if name.contains("goodput") {
                "q/s"
            } else {
                "fraction"
            };
            report.push_series(name, unit, points);
        }
    }
    report.emit();
}
