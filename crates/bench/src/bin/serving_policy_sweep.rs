//! KV accounting modes and scheduling policies through saturation: the
//! serving-level counterpart of §5.4's capacity management.
//!
//! Runs the paper's chatbot mix (512/3584) and a ShareGPT-like mix through
//! a capacity-managed operating point — the per-replica KV budget is
//! constrained so full-reservation admission (4096 tokens held from a
//! query's first instant) is the binding constraint — and sweeps offered
//! load across the knee for four configurations:
//!
//! * full-reservation + FIFO (the pre-refactor baseline),
//! * token-granular + FIFO (occupancy grows one token per decode step;
//!   youngest-resident preemption on exhaustion),
//! * token-granular + shortest-remaining-decode,
//! * token-granular + deadline-aware (least slack first).
//!
//! Token-granular admission packs roughly `budget / (prompt + decode/2)`
//! queries where full reservation packs `budget / (prompt + decode)` —
//! higher slot utilization and at-least-equal throughput at the same
//! offered load, at the price of preemption/recompute when the optimism
//! loses.
//!
//! The `config × load` grid runs in parallel under `std::thread::scope`:
//! each cell clones one pre-built `ServeOptions` (policies clone through
//! `SchedulingPolicy::clone_box`) and simulates against the shared
//! immutable system, then rows print in the serial order, so the output is
//! reproducible regardless of thread interleaving.
use cent_bench::Report;
use cent_model::ModelConfig;
use cent_serving::{
    ArrivalProcess, DeadlineAware, KvBudget, LengthSampler, ServeOptions, ServingReport,
    ServingSystem, ShortestRemainingDecode, Workload,
};
use cent_types::Time;

const LOADS: [f64; 4] = [0.5, 0.8, 1.0, 1.3];
const HORIZON_S: f64 = 600.0;
const SEED: u64 = 0xCE27;

struct Mix {
    name: &'static str,
    lengths: LengthSampler,
    /// Nominal (prompt, decode) shape used to anchor capacity and the SLO.
    prompt: usize,
    decode: usize,
}

/// The four swept configurations, each built exactly once per mix and
/// cloned per operating point.
fn configs(slo: Time) -> [(&'static str, ServeOptions); 4] {
    [
        // The default policy is FIFO in both KV modes.
        ("full+fifo", ServeOptions::default().with_slo(slo)),
        ("token+fifo", ServeOptions::token_granular().with_slo(slo)),
        (
            "token+srd",
            ServeOptions::token_granular()
                .with_policy(Box::new(ShortestRemainingDecode))
                .with_slo(slo),
        ),
        (
            "token+deadline",
            ServeOptions::token_granular()
                .with_policy(Box::new(DeadlineAware { slo }))
                .with_slo(slo),
        ),
    ]
}

fn main() {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    let system =
        ServingSystem::plan(&cfg, devices, cent_compiler::Strategy::PipelineParallel, 4096)
            .expect("planning Llama2-7B on 8 devices");
    // Capacity-managed operating point: budget for a third of the slots at
    // full 4096-token context, so reservation strategy decides concurrency.
    let slots_per_replica = system.total_slots() / system.replicas();
    let budget = KvBudget::tokens((slots_per_replica as u64 * 4096).div_ceil(3));
    let system = system.with_kv_budget(budget);
    let steady = system.steady_state_tokens_per_s();
    // Steady state runs all slots; per-token cadence = slots / steady.
    let token_interval_s = system.total_slots() as f64 / steady;

    let mixes = [
        Mix { name: "chatbot", lengths: LengthSampler::Chatbot, prompt: 512, decode: 3584 },
        Mix { name: "sharegpt", lengths: LengthSampler::ShareGpt, prompt: 164, decode: 222 },
    ];

    let mut report = Report::new(
        "serving_policy_sweep",
        "KV accounting × scheduling policy through saturation (Llama2-7B, 8 devices, \
         capacity-managed KV budget)",
        "token-granular occupancy admits more concurrent queries than full \
         reservation (§5.4 capacity management): higher slot utilization and \
         at-least-equal throughput at the same offered load",
    );

    for mix in &mixes {
        let capacity = system.capacity_qps(mix.prompt, mix.decode);
        // SLO: 2x the uncontended service time of the nominal shape.
        let slo = Time::from_secs_f64(2.0 * mix.decode as f64 * token_interval_s);
        let configs = configs(slo);
        println!(
            "{} mix: capacity {capacity:.3} q/s | KV budget {} tokens/replica | SLO {slo}",
            mix.name, budget.tokens,
        );
        println!(
            "{:>16} {:>6} {:>10} {:>7} {:>9} {:>10} {:>8} {:>9}",
            "config", "load", "tokens/s", "slots", "KV mean", "p99 lat", "preempt", "goodput"
        );
        // One simulation per (config, load) cell, all in parallel.
        let mut cells: Vec<Option<ServingReport>> = vec![None; configs.len() * LOADS.len()];
        std::thread::scope(|scope| {
            for (idx, cell) in cells.iter_mut().enumerate() {
                let (_, options) = &configs[idx / LOADS.len()];
                let load = LOADS[idx % LOADS.len()];
                let system = &system;
                let options = options.clone();
                scope.spawn(move || {
                    let w = Workload {
                        arrivals: ArrivalProcess::Poisson { rate_qps: load * capacity },
                        lengths: mix.lengths,
                        seed: SEED,
                    };
                    *cell = Some(system.run_with(&w, Time::from_secs_f64(HORIZON_S), options));
                });
            }
        });
        let mut series: Vec<(String, Vec<(String, f64)>)> = Vec::new();
        for (ci, (config, _)) in configs.iter().enumerate() {
            let mut tokens = Vec::new();
            let mut goodput = Vec::new();
            let mut util = Vec::new();
            for (li, load) in LOADS.iter().enumerate() {
                let r = cells[ci * LOADS.len() + li].as_ref().expect("cell completed");
                println!(
                    "{:>16} {:>5.2}x {:>10.0} {:>6.0}% {:>8.0}% {:>10} {:>8} {:>9.3}",
                    config,
                    load,
                    r.tokens_per_s,
                    100.0 * r.slot_utilization,
                    100.0 * r.kv_utilization,
                    r.query_latency.p99,
                    r.preemptions,
                    r.goodput_qps,
                );
                let label = format!("{load:.2}x");
                tokens.push((label.clone(), r.tokens_per_s));
                goodput.push((label.clone(), r.goodput_qps));
                util.push((label, r.slot_utilization));
            }
            series.push((format!("{} tokens/s [{config}]", mix.name), tokens));
            series.push((format!("{} goodput [{config}]", mix.name), goodput));
            series.push((format!("{} slot util [{config}]", mix.name), util));
        }
        println!();
        for (name, points) in &series {
            let unit = if name.contains("tokens/s") {
                "tokens/s"
            } else if name.contains("goodput") {
                "q/s"
            } else {
                "fraction"
            };
            report.push_series(name, unit, points);
        }
    }
    report.emit();
}
