//! Table 6: hardware cost bill of materials.
use cent_bench::Report;
use cent_cost::{ControllerCost, HardwareCosts};

fn main() {
    let hw = HardwareCosts::default();
    let mut report = Report::new(
        "table6",
        "Hardware costs",
        "GPU system $42,128; CENT system $14,873 (CPU + 512 GB GDDR6-PIM + 32 controllers + switch)",
    );
    let ctrl = ControllerCost::at_volume(3.0e6).total().amount();
    report.push_series(
        "bill of materials",
        "$",
        &[
            ("Xeon Gold 6430".into(), hw.host_cpu.amount()),
            ("4x A100 80GB".into(), hw.a100.amount() * 4.0),
            ("512GB GDDR6-PIM".into(), hw.pim_memory_512gb.amount()),
            ("32 CXL controllers".into(), ctrl * 32.0),
            ("CXL switch".into(), hw.cxl_switch.amount()),
            ("GPU system total".into(), hw.gpu_system(4).amount()),
            ("CENT system total".into(), hw.cent_system(32, 3.0e6).amount()),
        ],
    );
    report.emit();
}
