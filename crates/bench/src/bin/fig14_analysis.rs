//! Figure 14: long-context decode speedup, QoS curve, CENT latency
//! breakdown and prefill/decode latency split (Llama2-70B).
use cent_baselines::GpuSystem;
use cent_bench::Report;
use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::{evaluate, qos_sweep};

fn main() {
    let mut report = Report::new(
        "fig14",
        "Llama2-70B analysis",
        "(a) decode speedup grows to ~3.3x at 32K; (b) 3.4-7.6x lower latency at similar throughput; (c) PIM dominates breakdown; (d) decode dominates query latency",
    );
    let gpu = GpuSystem::a100x(4);

    // (a) decode throughput speedup vs context.
    let mut speedups = Vec::new();
    for ctx in [4096usize, 8192, 16384, 32768] {
        let cfg = ModelConfig::llama2_70b_long(ctx);
        // 16K/32K contexts need the 16 Gb parts (1 TB system); model that as
        // more devices carrying the same channel count per block.
        let devices = if ctx > 8192 { 64 } else { 32 };
        let Ok(cent) = evaluate(&cfg, devices, Strategy::PipelineParallel, ctx) else {
            continue;
        };
        let gpu_batch = gpu.max_batch(&cfg, ctx).clamp(1, 128);
        let gpu_tput = gpu.decode_tokens_per_s(&cfg, gpu_batch, ctx);
        speedups.push((format!("{}K", ctx / 1024), cent.decode_tokens_per_s / gpu_tput));
    }
    report.push_series("(a) decode speedup vs context", "x", &speedups);

    // (b) QoS sweep.
    let cfg = ModelConfig::llama2_70b();
    if let Ok(points) = qos_sweep(&cfg, 32, 4096, 512, 3584) {
        let lat: Vec<(String, f64)> =
            points.iter().map(|p| (p.label.clone(), p.query_latency_min)).collect();
        let tput: Vec<(String, f64)> =
            points.iter().map(|p| (p.label.clone(), p.queries_per_min)).collect();
        report.push_series("(b) query latency", "minutes", &lat);
        report.push_series("(b) throughput", "queries/min", &tput);
    }

    // (c) latency breakdown for PP.
    if let Ok(pp) = evaluate(&cfg, 32, Strategy::PipelineParallel, 4096) {
        let b = pp.breakdown;
        let total = b.total().as_secs().max(1e-12);
        report.push_series(
            "(c) PP=80 latency breakdown",
            "fraction",
            &[
                ("PIM".into(), b.pim.as_secs() / total),
                ("PNM".into(), b.pnm.as_secs() / total),
                ("CXL".into(), b.cxl.as_secs() / total),
                ("Host".into(), b.host.as_secs() / total),
            ],
        );
    }

    // (d) prefill vs decode query-latency split.
    if let Ok(pp) = evaluate(&cfg, 32, Strategy::PipelineParallel, 4096) {
        let mut rows = Vec::new();
        for out in [128usize, 512, 1024, 3584] {
            let total = pp.query_latency(512, out);
            rows.push((format!("out {out}"), total.as_secs() / 60.0));
        }
        report.push_series("(d) CENT query latency (in 512)", "minutes", &rows);
        let mut gpu_rows = Vec::new();
        for out in [128usize, 512, 1024, 3584] {
            let t = gpu.query_latency(&cfg, 128, 4096, 512, out);
            gpu_rows.push((format!("out {out}"), t.as_secs() / 60.0));
        }
        report.push_series("(d) GPU query latency (in 512)", "minutes", &gpu_rows);
    }
    report.emit();
}
