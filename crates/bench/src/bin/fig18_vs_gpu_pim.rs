//! Figure 18: CENT vs AttAcc and NeuPIM on GPT3-175B.
use cent_baselines::{sharegpt_lengths, PimNode};
use cent_bench::Report;
use cent_model::ModelConfig;

fn main() {
    let cfg = ModelConfig::gpt3_175b();
    let mut report = Report::new(
        "fig18",
        "CENT vs GPU-PIM heterogeneous systems (GPT3-175B)",
        "1.8-3.7x (AttAcc) and 1.8-5.3x (NeuPIM) more tokens/$; raw throughput 0.5-1.1x / 0.7-2.1x",
    );
    // Power-neutral sizing: 12 CENT devices per GPU-PIM node (8 nodes).
    let cent = PimNode::cent(96);
    let attacc = PimNode::attacc();
    let mut tpd = Vec::new();
    let mut raw = Vec::new();
    for (inp, out) in [(128usize, 128usize), (128, 2048), (2048, 128), (2048, 2048)] {
        let ctx = inp + out;
        let ab = attacc.max_batch(&cfg, ctx).max(1);
        let cb = cent.max_batch(&cfg, ctx).max(1);
        let at = attacc.decode_tokens_per_s(&cfg, ab, ctx);
        let ct = cent.decode_tokens_per_s(&cfg, cb, ctx);
        let label = format!("in{inp} out{out}");
        tpd.push((label.clone(), cent.tokens_per_dollar(ct) / attacc.tokens_per_dollar(at)));
        raw.push((label, ct / at));
    }
    report.push_series("(a) vs AttAcc tokens/$ ratio", "x", &tpd);
    report.push_series("(a) vs AttAcc raw throughput ratio", "x", &raw);

    // (b) NeuPIM with the ShareGPT-like distribution.
    let neupim = PimNode::neupim();
    let lengths = sharegpt_lengths(256, 2025);
    let avg_ctx = (lengths.iter().map(|(i, o)| i + o).sum::<usize>() / lengths.len()).max(64);
    let mut tpd_rows = Vec::new();
    let mut raw_rows = Vec::new();
    let cent_batch = cent.max_batch(&cfg, avg_ctx).min(96);
    let ct = cent.decode_tokens_per_s(&cfg, cent_batch, avg_ctx);
    for nb in [64usize, 96, 128, 256, 512] {
        let batch = nb.min(neupim.max_batch(&cfg, avg_ctx).max(1));
        let nt = neupim.decode_tokens_per_s(&cfg, batch, avg_ctx);
        tpd_rows.push((
            format!("NeuPIM b{nb}"),
            cent.tokens_per_dollar(ct) / neupim.tokens_per_dollar(nt),
        ));
        raw_rows.push((format!("NeuPIM b{nb}"), ct / nt));
    }
    report.push_series("(b) vs NeuPIM tokens/$ ratio (ShareGPT-like)", "x", &tpd_rows);
    report.push_series("(b) vs NeuPIM raw throughput ratio", "x", &raw_rows);
    report.emit();
}
