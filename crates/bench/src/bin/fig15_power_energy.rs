//! Figure 15: power consumption, GPU throttling trace and tokens/J.
use cent_baselines::{throttle_trace, GpuSpec, GpuSystem};
use cent_bench::{geomean, Report};
use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_power::{
    device_power, tokens_per_joule, ControllerPowerModel, DramEnergyModel, HOST_CPU_POWER,
};
use cent_sim::evaluate;
use cent_types::Power;

fn main() {
    let mut report = Report::new(
        "fig15",
        "Power and energy efficiency",
        "one A100 ~8x one CENT device; GPU throttles at TDP; CENT 2.9x tokens/J end-to-end (GPU wins prefill ~2.4x)",
    );
    let cases: [(ModelConfig, usize, usize); 3] = [
        (ModelConfig::llama2_7b(), 8, 1),
        (ModelConfig::llama2_13b(), 20, 2),
        (ModelConfig::llama2_70b(), 32, 4),
    ];
    let mut power_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut ratios = Vec::new();
    for (cfg, devices, gpus) in cases {
        let Ok(cent) = evaluate(&cfg, devices, Strategy::PipelineParallel, 4096) else {
            continue;
        };
        // Device power from the simulated block activity, scaled to the
        // blocks each device hosts.
        let bpd = cent.mapping.blocks_per_device as f64;
        let window = cent.block.total;
        let dp = device_power(
            &DramEnergyModel::default(),
            &ControllerPowerModel::default(),
            &cent.block.dram.scaled(bpd),
            &cent.block.pnm,
            window,
        );
        let used = cent.mapping.used_devices as f64;
        let cent_system_power =
            Power::watts(dp.total.as_watts() * used + 8.0 * (devices as f64 - used))
                + HOST_CPU_POWER;
        let gpu = GpuSystem::a100x(gpus);
        let gpu_power = gpu.avg_power(0.95) + HOST_CPU_POWER;
        power_rows.push((format!("{} CENT", cfg.name), cent_system_power.as_watts()));
        power_rows.push((format!("{} GPU", cfg.name), gpu_power.as_watts()));
        let gpu_batch = 128.min(gpu.max_batch(&cfg, 4096).max(1));
        let gpu_tput = gpu.decode_tokens_per_s(&cfg, gpu_batch, 4096);
        let cent_tpj = tokens_per_joule(cent.decode_tokens_per_s, cent_system_power);
        let gpu_tpj = tokens_per_joule(gpu_tput, gpu_power);
        energy_rows.push((cfg.name.to_string(), cent_tpj / gpu_tpj));
        ratios.push(cent_tpj / gpu_tpj);
        eprintln!(
            "{}: CENT {:.1} W/device ({:.3} PIM-op share), system {:.0} W vs GPU {:.0} W",
            cfg.name,
            dp.total.as_watts(),
            dp.pim_op_fraction,
            cent_system_power.as_watts(),
            gpu_power.as_watts()
        );
    }
    energy_rows.push(("geomean".into(), geomean(&ratios)));
    report.push_series("(a) system power", "W", &power_rows);
    report.push_series("(c) tokens/J ratio CENT/GPU", "x", &energy_rows);
    // (b) throttle trace: summarise three landmark points.
    let trace = throttle_trace(&GpuSpec::a100(), 60);
    report.push_series(
        "(b) GPU throttle trace",
        "MHz | W",
        &[
            ("init clock".into(), trace[5].sm_clock_mhz),
            ("prefill clock".into(), trace[15].sm_clock_mhz),
            ("decode clock".into(), trace[55].sm_clock_mhz),
            ("prefill power".into(), trace[15].board_power_w),
            ("decode power".into(), trace[55].board_power_w),
        ],
    );
    report.emit();
}
