//! Offered load vs p99 latency: the serving-level counterpart of the
//! paper's QoS study (§7.1), produced by the request-level simulator.
//!
//! Sweeps Poisson offered load from 25% to 150% of the deployment's chatbot
//! capacity and records delivered tokens/s, p99 TTFT and p99 query latency
//! — the classic throughput–latency knee. The load points are anchored on
//! `capacity_qps(512, 3584)`, which takes the tighter of the decode- and
//! prefill-side limits (the chatbot mix is decode-bound, but the anchor now
//! stays correct for prompt-heavy what-ifs too).
//!
//! The workload trace is generated **once**, at the maximum swept rate, and
//! shared behind an `Arc`; every lower operating point derives its trace by
//! deterministic Poisson thinning (`Workload::thin_trace` — an exact
//! Poisson-process identity, not an approximation), so the sweep pays the
//! hour-long trace generation one time instead of eight. Points run in
//! parallel under `std::thread::scope`, results print in load order, and
//! the whole sweep is bit-for-bit reproducible.
use std::sync::Arc;

use cent_bench::Report;
use cent_model::ModelConfig;
use cent_serving::{ServeOptions, ServingReport, ServingSystem, TickEngine, Workload};
use cent_types::Time;

const LOADS: [f64; 8] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5];

fn main() {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    let system =
        ServingSystem::plan(&cfg, devices, cent_compiler::Strategy::PipelineParallel, 4096)
            .expect("planning Llama2-7B on 8 devices");
    // The corrected knee: min(decode-side, prefill-side) capacity for the
    // paper's 512-in/3584-out chatbot shape.
    let capacity = system.capacity_qps(512, 3584);
    let horizon = Time::from_secs_f64(3600.0);
    let max_load = LOADS.last().copied().expect("non-empty sweep");

    // One generation at the top rate; every other point thins it.
    let base = Arc::new(Workload::chatbot(max_load * capacity, 0xCE27).generate(horizon, 4096));

    // Fan the operating points out across threads; each writes its own
    // pre-allocated slot, so the collected order is the load order.
    let mut results: Vec<Option<ServingReport>> = vec![None; LOADS.len()];
    std::thread::scope(|scope| {
        for (slot, &load) in results.iter_mut().zip(&LOADS) {
            let system = &system;
            let base = Arc::clone(&base);
            scope.spawn(move || {
                // The top point serves the shared trace in place; lower
                // points thin it (the thinned copies are strictly smaller).
                let thinned;
                let trace: &[_] = if load == max_load {
                    &base
                } else {
                    thinned = Workload::thin_trace(&base, load / max_load, 0xCE27 ^ load.to_bits());
                    &thinned
                };
                // Span fast-forward: bit-identical to the default engine
                // (tests/serving_props.rs), minus the per-tick event cost.
                let options = ServeOptions::default().with_engine(TickEngine::SpanFastForward);
                *slot = Some(system.serve_trace_with(trace, load * capacity, options));
            });
        }
    });

    let mut tokens = Vec::new();
    let mut ttft_p99 = Vec::new();
    let mut latency_p99 = Vec::new();
    for (&load, result) in LOADS.iter().zip(&results) {
        let r = result.as_ref().expect("every sweep point completed");
        let label = format!("{load:.2}x");
        tokens.push((label.clone(), r.tokens_per_s));
        ttft_p99.push((label.clone(), r.ttft.p99.as_secs()));
        latency_p99.push((label, r.query_latency.p99.as_secs()));
    }

    let mut report = Report::new(
        "serving_load_sweep",
        "Offered load vs p99 latency (Llama2-7B, 8 devices, 512/3584 chatbot mix)",
        "throughput plateaus at the steady-state evaluate() rate while p99 \
         latency rises sharply past the saturation knee",
    );
    report.push_series("decode throughput", "tokens/s", &tokens);
    report.push_series("TTFT p99", "s", &ttft_p99);
    report.push_series("query latency p99", "s", &latency_p99);
    report.emit();
}
