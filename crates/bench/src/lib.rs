//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the CENT paper (see DESIGN.md's experiment index).
//!
//! Each binary prints the paper-style rows to stdout and appends a JSON
//! record under `results/` so EXPERIMENTS.md can cite the measured values.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

/// Paper-vs-measured record for one experiment series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (e.g. "decode throughput, Llama2-70B").
    pub name: String,
    /// X labels (batch sizes, device counts, ...).
    pub x: Vec<String>,
    /// Measured values.
    pub y: Vec<f64>,
    /// Unit of `y`.
    pub unit: String,
}

/// A complete experiment result.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("fig13", "table4", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for the same quantity (shape/level summary).
    pub paper_reference: String,
    /// Measured series.
    pub series: Vec<Series>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, paper_reference: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            paper_reference: paper_reference.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, name: &str, unit: &str, points: &[(String, f64)]) {
        self.series.push(Series {
            name: name.to_string(),
            x: points.iter().map(|(x, _)| x.clone()).collect(),
            y: points.iter().map(|(_, y)| *y).collect(),
            unit: unit.to_string(),
        });
    }

    /// Prints the report to stdout in a paper-style table and writes
    /// `results/<id>.json`.
    pub fn emit(&self) {
        println!("== {} — {} ==", self.id, self.title);
        println!("   paper: {}", self.paper_reference);
        for s in &self.series {
            println!("   {} [{}]:", s.name, s.unit);
            for (x, y) in s.x.iter().zip(&s.y) {
                println!("     {x:>24}  {y:>14.4}");
            }
        }
        println!();
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.json", self.id));
        let _ = fs::write(path, self.to_json());
    }

    /// Serialises the report as pretty-printed JSON (hand-rolled; the build
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!("  \"paper_reference\": {},\n", json_str(&self.paper_reference)));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_str(&s.name)));
            let xs: Vec<String> = s.x.iter().map(|x| json_str(x)).collect();
            out.push_str(&format!("      \"x\": [{}],\n", xs.join(", ")));
            let ys: Vec<String> = s.y.iter().map(|y| json_f64(*y)).collect();
            out.push_str(&format!("      \"y\": [{}],\n", ys.join(", ")));
            out.push_str(&format!("      \"unit\": {}\n", json_str(&s.unit)));
            out.push_str(if i + 1 < self.series.len() { "    },\n" } else { "    }\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report fields can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number (JSON has no NaN/Inf; map them to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Where result JSON files land (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Geometric mean helper used by the speedup figures.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn report_round_trips_to_json() {
        let mut r = Report::new("test", "Test \"quoted\"", "n/a");
        r.push_series("s", "unit", &[("a".into(), 1.0), ("b".into(), 2.0)]);
        let json = r.to_json();
        assert!(json.contains("\"id\": \"test\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("[1, 2]"), "{json}");
    }
}
