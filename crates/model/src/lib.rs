//! LLM model architectures, memory accounting and the f32 reference
//! implementation used to verify CENT's functional simulation.
//!
//! * [`ModelConfig`] — Llama2 7B/13B/70B, OPT-66B, GPT3-175B and a tiny test
//!   config, with parameter/KV-cache/FLOP accounting used throughout the
//!   simulators and baselines;
//! * [`reference_block`] — a straightforward f32 transformer block
//!   (RMSNorm, RoPE, grouped-query attention with KV cache, gated-SiLU or
//!   GeLU FFN) serving as functional ground truth;
//! * [`BlockWeights`]/[`KvCache`] — deterministic random weights and cache
//!   state for verification runs.

#![forbid(unsafe_code)]

mod config;
mod reference;

pub use config::{FfnKind, ModelConfig, PositionalKind};
pub use reference::{
    dot, gelu, reference_block, reference_block_sequence, rmsnorm, rope, silu, softmax,
    BlockWeights, KvCache, Matrix,
};
