//! Decoder-only LLM architecture descriptions.
//!
//! The paper evaluates Llama2 7B/13B/70B (§6), OPT-66B (Fig 17) and
//! GPT3-175B (Fig 18). The configs here carry exactly the quantities the
//! mapping and simulators need: layer counts, projection shapes, GQA head
//! layout, FFN style and context limits.

use cent_types::ByteSize;

/// Feed-forward network flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FfnKind {
    /// Gated SiLU FFN (`w2( silu(w1·x) ⊙ w3·x )`) — Llama family.
    GatedSilu,
    /// Plain two-matrix FFN with GeLU — OPT/GPT3 family.
    Gelu,
}

/// Positional-encoding flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionalKind {
    /// Rotary position embedding applied to Q/K (Llama family).
    Rotary,
    /// Learned absolute embeddings added at the input (OPT/GPT3 family).
    Absolute,
}

/// A decoder-only transformer architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Human-readable name ("Llama2-70B").
    pub name: &'static str,
    /// Number of transformer blocks (pipeline stages under PP).
    pub layers: usize,
    /// Embedding (hidden) dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Key/value heads (< `heads` under grouped-query attention).
    pub kv_heads: usize,
    /// FFN intermediate dimension.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum supported context length.
    pub max_context: usize,
    /// FFN flavour.
    pub ffn: FfnKind,
    /// Positional encoding flavour.
    pub positional: PositionalKind,
}

impl ModelConfig {
    /// Llama2-7B: 32 layers, 4096 hidden, MHA.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "Llama2-7B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 32,
            ffn_hidden: 11008,
            vocab: 32000,
            max_context: 4096,
            ffn: FfnKind::GatedSilu,
            positional: PositionalKind::Rotary,
        }
    }

    /// Llama2-13B: 40 layers, 5120 hidden, MHA.
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama2-13B",
            layers: 40,
            hidden: 5120,
            heads: 40,
            kv_heads: 40,
            ffn_hidden: 13824,
            vocab: 32000,
            max_context: 4096,
            ffn: FfnKind::GatedSilu,
            positional: PositionalKind::Rotary,
        }
    }

    /// Llama2-70B: 80 layers, 8192 hidden, GQA with 8 KV heads.
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "Llama2-70B",
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 28672,
            vocab: 32000,
            max_context: 4096,
            ffn: FfnKind::GatedSilu,
            positional: PositionalKind::Rotary,
        }
    }

    /// Llama2-70B with extended context (the paper's Figure 14a runs 8K-32K
    /// contexts using 16 Gb GDDR6 parts).
    pub fn llama2_70b_long(max_context: usize) -> Self {
        ModelConfig { max_context, ..Self::llama2_70b() }
    }

    /// OPT-66B (Figure 17 baseline comparison).
    pub fn opt_66b() -> Self {
        ModelConfig {
            name: "OPT-66B",
            layers: 64,
            hidden: 9216,
            heads: 72,
            kv_heads: 72,
            ffn_hidden: 36864,
            vocab: 50272,
            max_context: 2048,
            ffn: FfnKind::Gelu,
            positional: PositionalKind::Absolute,
        }
    }

    /// GPT3-175B (Figure 18 baseline comparison).
    pub fn gpt3_175b() -> Self {
        ModelConfig {
            name: "GPT3-175B",
            layers: 96,
            hidden: 12288,
            heads: 96,
            kv_heads: 96,
            ffn_hidden: 49152,
            vocab: 50257,
            max_context: 2048,
            ffn: FfnKind::Gelu,
            positional: PositionalKind::Absolute,
        }
    }

    /// A miniature config for functional tests: dimensions sized so every
    /// tensor fits in a couple of Shared Buffer beats.
    pub fn tiny() -> Self {
        ModelConfig {
            name: "Tiny-Test",
            layers: 2,
            hidden: 64,
            heads: 4,
            kv_heads: 2,
            ffn_hidden: 128,
            vocab: 256,
            max_context: 64,
            ffn: FfnKind::GatedSilu,
            positional: PositionalKind::Rotary,
        }
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Key/value projection width (`kv_heads · head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Parameters in one transformer block.
    pub fn params_per_block(&self) -> u64 {
        let h = self.hidden as u64;
        let kv = self.kv_dim() as u64;
        let f = self.ffn_hidden as u64;
        // Q, K, V, O projections.
        let attn = h * h + h * kv + h * kv + h * h;
        // FFN matrices: gated has three, plain has two.
        let ffn = match self.ffn {
            FfnKind::GatedSilu => 3 * h * f,
            FfnKind::Gelu => 2 * h * f,
        };
        // Two norm weight vectors.
        attn + ffn + 2 * h
    }

    /// Total parameters including embeddings.
    pub fn total_params(&self) -> u64 {
        self.params_per_block() * self.layers as u64 + 2 * (self.vocab as u64 * self.hidden as u64)
    }

    /// Weight bytes per block at BF16.
    pub fn block_weight_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.params_per_block() * 2)
    }

    /// KV-cache bytes per token per block at BF16 (K and V).
    pub fn kv_bytes_per_token_per_block(&self) -> ByteSize {
        ByteSize::bytes(2 * self.kv_dim() as u64 * 2)
    }

    /// KV-cache bytes for a full context of one query across all blocks.
    pub fn kv_bytes_per_query(&self, context: usize) -> ByteSize {
        ByteSize::bytes(
            self.kv_bytes_per_token_per_block().as_bytes() * context as u64 * self.layers as u64,
        )
    }

    /// Total memory for weights plus a batch's KV caches at `context`.
    pub fn memory_required(&self, batch: usize, context: usize) -> ByteSize {
        let weights = ByteSize::bytes(self.total_params() * 2);
        let kv = ByteSize::bytes(self.kv_bytes_per_query(context).as_bytes() * batch as u64);
        weights + kv
    }

    /// FLOPs to decode one token for one query at `context` length
    /// (2 FLOPs per weight + attention score/output GEMVs).
    pub fn decode_flops_per_token(&self, context: usize) -> u64 {
        let weight_flops = 2 * self.params_per_block() * self.layers as u64;
        // Scores: heads × ctx × head_dim MACs; output: same again.
        let attn_flops = 2 * 2 * (self.heads as u64) * (context as u64) * (self.head_dim() as u64);
        weight_flops + attn_flops * self.layers as u64
    }

    /// FLOPs to prefill a prompt of `n` tokens (GEMM form; same weight math
    /// per token plus quadratic attention).
    pub fn prefill_flops(&self, n: usize) -> u64 {
        let per_token_weights = 2 * self.params_per_block() * self.layers as u64;
        let attn = 2 * 2 * (self.heads as u64) * (self.head_dim() as u64) * (n as u64).pow(2) / 2;
        per_token_weights * n as u64 + attn * self.layers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_parameter_counts_match_published_sizes() {
        // Published sizes: 6.74B, 13.0B, 68.98B (±2% tolerance here).
        let cases = [
            (ModelConfig::llama2_7b(), 6.74e9),
            (ModelConfig::llama2_13b(), 13.0e9),
            (ModelConfig::llama2_70b(), 69.0e9),
        ];
        for (cfg, expect) in cases {
            let got = cfg.total_params() as f64;
            assert!(
                (got - expect).abs() / expect < 0.02,
                "{}: {got:.3e} vs {expect:.3e}",
                cfg.name
            );
        }
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let mha = ModelConfig::llama2_13b();
        let gqa = ModelConfig::llama2_70b();
        // 70B has 8 KV heads of 128 → 1024 kv_dim vs 13B's full 5120.
        assert_eq!(gqa.kv_dim(), 1024);
        assert_eq!(mha.kv_dim(), 5120);
        // Per token per block: 2 × 1024 × 2B = 4 KiB for 70B.
        assert_eq!(gqa.kv_bytes_per_token_per_block().as_bytes(), 4096);
    }

    #[test]
    fn seventy_b_memory_at_4k_context() {
        let cfg = ModelConfig::llama2_70b();
        // Weights ≈ 138 GB; KV per query at 4K ≈ 1.31 GB.
        let weights_gib = ByteSize::bytes(cfg.total_params() * 2).as_gib();
        assert!(weights_gib > 125.0 && weights_gib < 135.0, "weights {weights_gib}");
        let kv = cfg.kv_bytes_per_query(4096);
        assert!((kv.as_gib() - 1.25).abs() < 0.05, "kv {}", kv.as_gib());
        // Figure 1: batch 64 at 4K context overflows 320 GB of GPU memory.
        assert!(cfg.memory_required(64, 4096) > ByteSize::gib(190));
    }

    #[test]
    fn head_dim_is_128_for_llama2() {
        assert_eq!(ModelConfig::llama2_7b().head_dim(), 128);
        assert_eq!(ModelConfig::llama2_70b().head_dim(), 128);
    }

    #[test]
    fn gpt3_is_175b() {
        let cfg = ModelConfig::gpt3_175b();
        let got = cfg.total_params() as f64;
        assert!((got - 175e9).abs() / 175e9 < 0.02, "{got:.3e}");
    }

    #[test]
    fn decode_flops_grow_with_context() {
        let cfg = ModelConfig::llama2_7b();
        assert!(cfg.decode_flops_per_token(4096) > cfg.decode_flops_per_token(128));
        // Weight FLOPs dominate at short context: ~2 × params.
        let flops = cfg.decode_flops_per_token(128) as f64;
        assert!((flops / (2.0 * cfg.total_params() as f64) - 1.0).abs() < 0.1);
    }

    #[test]
    fn tiny_config_is_consistent() {
        let cfg = ModelConfig::tiny();
        assert_eq!(cfg.head_dim(), 16);
        assert_eq!(cfg.kv_dim(), 32);
        assert!(cfg.params_per_block() < 100_000);
    }
}
