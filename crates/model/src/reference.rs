//! f32 reference implementation of the transformer block.
//!
//! This is the ground truth the PIM/PNM functional simulation is verified
//! against (DESIGN.md "Verification strategy"). It follows Figure 3(c) of
//! the paper exactly: RMSNorm → QKV projections → RoPE → GQA attention with
//! KV cache → output projection → residual → RMSNorm → gated-SiLU FFN →
//! residual.

use cent_types::Rng64;

use crate::config::{FfnKind, ModelConfig, PositionalKind};

/// Row-major matrix: `rows × cols`, `data[r * cols + c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Output dimension.
    pub rows: usize,
    /// Input dimension.
    pub cols: usize,
    /// Row-major storage.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Small random weights (±0.08, uniform) — keeps activations in range
    /// for BF16 comparison without normalisation tricks.
    pub fn random(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(-0.08, 0.08) as f32).collect();
        Matrix { rows, cols, data }
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = M · x` (GEMV).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn gemv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// RMSNorm: `x / sqrt(mean(x²) + eps) ⊙ gain` (paper Figure 10b).
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    let mean_sq = dot(x, x) / x.len() as f32;
    let scale = 1.0 / (mean_sq + eps).sqrt();
    x.iter().zip(gain).map(|(v, g)| v * scale * g).collect()
}

/// Softmax over a slice.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// SiLU activation.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// GeLU activation (tanh form).
pub fn gelu(x: f32) -> f32 {
    let inner = 0.797_884_6 * (x + 0.044_715 * x * x * x);
    0.5 * x * (1.0 + inner.tanh())
}

/// Applies rotary position embedding to one head in place.
pub fn rope(head: &mut [f32], position: usize) {
    let dim = head.len();
    for pair in 0..dim / 2 {
        let theta = (position as f32) * f32::powf(10_000.0, -2.0 * (pair as f32) / (dim as f32));
        let (sin, cos) = theta.sin_cos();
        let (a, b) = (head[2 * pair], head[2 * pair + 1]);
        head[2 * pair] = a * cos - b * sin;
        head[2 * pair + 1] = a * sin + b * cos;
    }
}

/// The weights of one transformer block.
#[derive(Debug, Clone)]
pub struct BlockWeights {
    /// Query projection (`hidden × hidden`).
    pub wq: Matrix,
    /// Key projection (`kv_dim × hidden`).
    pub wk: Matrix,
    /// Value projection (`kv_dim × hidden`).
    pub wv: Matrix,
    /// Output projection (`hidden × hidden`).
    pub wo: Matrix,
    /// FFN gate matrix `w1` (`ffn × hidden`).
    pub w1: Matrix,
    /// FFN down matrix `w2` (`hidden × ffn`).
    pub w2: Matrix,
    /// FFN up matrix `w3` (`ffn × hidden`; unused for plain GeLU FFNs).
    pub w3: Matrix,
    /// Pre-attention RMSNorm gain.
    pub norm1: Vec<f32>,
    /// Pre-FFN RMSNorm gain.
    pub norm2: Vec<f32>,
}

impl BlockWeights {
    /// Deterministic random weights for `cfg`.
    pub fn random(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = Rng64::seed(seed);
        let h = cfg.hidden;
        let kv = cfg.kv_dim();
        let f = cfg.ffn_hidden;
        BlockWeights {
            wq: Matrix::random(h, h, &mut rng),
            wk: Matrix::random(kv, h, &mut rng),
            wv: Matrix::random(kv, h, &mut rng),
            wo: Matrix::random(h, h, &mut rng),
            w1: Matrix::random(f, h, &mut rng),
            w2: Matrix::random(h, f, &mut rng),
            w3: Matrix::random(f, h, &mut rng),
            norm1: vec![1.0; h],
            norm2: vec![1.0; h],
        }
    }
}

/// The KV cache of one block: `k[t]`/`v[t]` are `kv_dim`-wide vectors.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    /// Cached keys, one entry per past token.
    pub k: Vec<Vec<f32>>,
    /// Cached values, one entry per past token.
    pub v: Vec<Vec<f32>>,
}

impl KvCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokens currently cached.
    pub fn len(&self) -> usize {
        self.k.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }
}

/// Runs one transformer block on a single token vector `x` at `position`,
/// appending to `cache`. Returns the block output (with both residuals).
///
/// This is the exact operation CENT maps onto a pipeline stage (§5.4).
pub fn reference_block(
    cfg: &ModelConfig,
    w: &BlockWeights,
    x: &[f32],
    cache: &mut KvCache,
    position: usize,
) -> Vec<f32> {
    let head_dim = cfg.head_dim();
    let group = cfg.heads / cfg.kv_heads;

    // --- Self attention ---
    let normed = rmsnorm(x, &w.norm1, 1e-5);
    let mut q = w.wq.gemv(&normed);
    let mut k = w.wk.gemv(&normed);
    let v = w.wv.gemv(&normed);

    if cfg.positional == PositionalKind::Rotary {
        for h in 0..cfg.heads {
            rope(&mut q[h * head_dim..(h + 1) * head_dim], position);
        }
        for h in 0..cfg.kv_heads {
            rope(&mut k[h * head_dim..(h + 1) * head_dim], position);
        }
    }

    cache.k.push(k);
    cache.v.push(v);
    let ctx = cache.len();

    let mut attn_out = vec![0.0f32; cfg.hidden];
    let scale = 1.0 / (head_dim as f32).sqrt();
    for h in 0..cfg.heads {
        let kv_head = h / group;
        let q_head = &q[h * head_dim..(h + 1) * head_dim];
        // Scores against every cached key of this head's KV group.
        let scores: Vec<f32> = (0..ctx)
            .map(|t| {
                let k_head = &cache.k[t][kv_head * head_dim..(kv_head + 1) * head_dim];
                dot(q_head, k_head) * scale
            })
            .collect();
        let probs = softmax(&scores);
        let out = &mut attn_out[h * head_dim..(h + 1) * head_dim];
        for (t, p) in probs.iter().enumerate() {
            let v_head = &cache.v[t][kv_head * head_dim..(kv_head + 1) * head_dim];
            for (o, vv) in out.iter_mut().zip(v_head) {
                *o += p * vv;
            }
        }
    }
    let projected = w.wo.gemv(&attn_out);
    let x1: Vec<f32> = x.iter().zip(&projected).map(|(a, b)| a + b).collect();

    // --- Feed forward ---
    let normed2 = rmsnorm(&x1, &w.norm2, 1e-5);
    let ffn_out = match cfg.ffn {
        FfnKind::GatedSilu => {
            let gate = w.w1.gemv(&normed2);
            let up = w.w3.gemv(&normed2);
            let inner: Vec<f32> = gate.iter().zip(&up).map(|(g, u)| silu(*g) * u).collect();
            w.w2.gemv(&inner)
        }
        FfnKind::Gelu => {
            let inner: Vec<f32> = w.w1.gemv(&normed2).into_iter().map(gelu).collect();
            w.w2.gemv(&inner)
        }
    };
    x1.iter().zip(&ffn_out).map(|(a, b)| a + b).collect()
}

/// Runs a sequence of tokens through one block (prefill-style), returning
/// the output of the final token.
pub fn reference_block_sequence(
    cfg: &ModelConfig,
    w: &BlockWeights,
    tokens: &[Vec<f32>],
    cache: &mut KvCache,
) -> Vec<f32> {
    let mut last = Vec::new();
    for (pos, x) in tokens.iter().enumerate() {
        last = reference_block(cfg, w, x, cache, pos);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ModelConfig, BlockWeights) {
        let cfg = ModelConfig::tiny();
        let w = BlockWeights::random(&cfg, 42);
        (cfg, w)
    }

    #[test]
    fn gemv_matches_manual() {
        let m = Matrix { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        assert_eq!(m.gemv(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn rmsnorm_unit_gain_normalises() {
        let x = vec![3.0, 4.0];
        let out = rmsnorm(&x, &[1.0, 1.0], 0.0);
        // mean square = 12.5, rms = 3.5355 → [0.8485, 1.1314].
        assert!((out[0] - 0.848_53).abs() < 1e-4);
        assert!((out[1] - 1.131_37).abs() < 1e-4);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let p = softmax(&[1000.0, 999.0]);
        assert!(p[0].is_finite() && p[1].is_finite());
        assert!(p[0] > p[1]);
    }

    #[test]
    fn rope_preserves_norm() {
        let mut head: Vec<f32> = (0..16).map(|i| i as f32 / 7.0).collect();
        let norm_before = dot(&head, &head);
        rope(&mut head, 17);
        let norm_after = dot(&head, &head);
        assert!((norm_before - norm_after).abs() / norm_before < 1e-5);
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut head = vec![0.5, -0.25, 1.0, 2.0];
        let orig = head.clone();
        rope(&mut head, 0);
        assert_eq!(head, orig);
    }

    #[test]
    fn block_output_is_deterministic() {
        let (cfg, w) = tiny();
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 / 64.0).sin() * 0.1).collect();
        let mut c1 = KvCache::new();
        let mut c2 = KvCache::new();
        let a = reference_block(&cfg, &w, &x, &mut c1, 0);
        let b = reference_block(&cfg, &w, &x, &mut c2, 0);
        assert_eq!(a, b);
        assert_eq!(c1.len(), 1);
    }

    #[test]
    fn kv_cache_grows_and_changes_output() {
        let (cfg, w) = tiny();
        let x: Vec<f32> = (0..cfg.hidden).map(|i| (i as f32 / 9.0).cos() * 0.1).collect();
        let mut cache = KvCache::new();
        let first = reference_block(&cfg, &w, &x, &mut cache, 0);
        let second = reference_block(&cfg, &w, &x, &mut cache, 1);
        assert_eq!(cache.len(), 2);
        // Attention over two cached tokens differs from one.
        assert_ne!(first, second);
    }

    #[test]
    fn gqa_groups_share_kv_heads() {
        // With kv_heads == heads the group size is 1; tiny has group 2.
        let cfg = ModelConfig::tiny();
        assert_eq!(cfg.heads / cfg.kv_heads, 2);
        // A block must still run cleanly end to end.
        let w = BlockWeights::random(&cfg, 7);
        let x = vec![0.05; cfg.hidden];
        let out = reference_block(&cfg, &w, &x, &mut KvCache::new(), 0);
        assert_eq!(out.len(), cfg.hidden);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sequence_runner_fills_cache() {
        let (cfg, w) = tiny();
        let tokens: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..cfg.hidden).map(|i| ((t * i) as f32).sin() * 0.05).collect())
            .collect();
        let mut cache = KvCache::new();
        let out = reference_block_sequence(&cfg, &w, &tokens, &mut cache);
        assert_eq!(cache.len(), 5);
        assert_eq!(out.len(), cfg.hidden);
    }

    #[test]
    fn gelu_ffn_variant_runs() {
        let cfg = ModelConfig { ffn: FfnKind::Gelu, ..ModelConfig::tiny() };
        let w = BlockWeights::random(&cfg, 3);
        let out = reference_block(&cfg, &w, &vec![0.1; cfg.hidden], &mut KvCache::new(), 0);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
