//! Invariants of the system-level performance composition (§5 of the
//! paper): how one simulated block step scales across pipeline stages,
//! tensor shards and data-parallel replicas.

use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::evaluate;
use cent_types::consts::host;
use cent_types::Time;

fn tiny() -> ModelConfig {
    ModelConfig::tiny()
}

// PP: the batch equals the pipeline stage count — one query per stage
// (§5.1), regardless of how many devices host those stages.
#[test]
fn pp_stage_count_equals_batch() {
    for devices in [1, 2] {
        let perf = evaluate(&tiny(), devices, Strategy::PipelineParallel, 32).unwrap();
        assert_eq!(perf.mapping.batch, tiny().layers, "devices {devices}");
    }
    // DP replicas keep the per-replica batch.
    let dp = evaluate(&tiny(), 2, Strategy::DataParallel { replicas: 2 }, 32).unwrap();
    assert_eq!(dp.mapping.batch, tiny().layers);
    // TP serves a single query.
    let tp = evaluate(&tiny(), 2, Strategy::TensorParallel, 32).unwrap();
    assert_eq!(tp.mapping.batch, 1);
}

// PP: a token's latency is the pipeline round trip — stages × interval plus
// the host sampling step — and the system emits one token per interval, so
// latency and throughput are linked through the stage count.
#[test]
fn pp_token_latency_is_stages_times_interval() {
    let cfg = tiny();
    let perf = evaluate(&cfg, 2, Strategy::PipelineParallel, 32).unwrap();
    let interval_from_throughput = Time::from_secs_f64(1.0 / perf.decode_tokens_per_s);
    let derived =
        Time::from_ps(interval_from_throughput.as_ps() * cfg.layers as u64) + host::TOP_K_SAMPLING;
    let (got, want) = (perf.token_latency.as_secs(), derived.as_secs());
    assert!((got - want).abs() / want < 1e-6, "token latency {got} vs derived {want}");
}

// TP shrinks only the fully-connected phases: the attention/norm/RoPE time
// stays on the master device, so doubling the shard count can save at most
// the remaining FC time — and must pay more CXL, not less.
#[test]
fn tp_shrinks_only_fc_phases() {
    let cfg = tiny();
    let tp2 = evaluate(&cfg, 2, Strategy::TensorParallel, 32).unwrap();
    let tp4 = evaluate(&cfg, 4, Strategy::TensorParallel, 32).unwrap();

    // The underlying block partitions exactly into FC + master time.
    assert!(tp2.block.fc_time() > Time::ZERO);
    assert_eq!(tp2.block.fc_time() + tp2.block.master_time(), tp2.block.total);

    // Broadcast/gather fan-out grows with the shard count.
    assert!(tp4.breakdown.cxl > tp2.breakdown.cxl);

    // Latency saving from 2 → 4 shards is bounded by the sharded FC time
    // alone (FC/2 − FC/4 per block): everything else is constant or grows.
    let saved = tp2.token_latency.saturating_sub(tp4.token_latency);
    let fc_bound = Time::from_ps(tp2.block.fc_time().as_ps() / 4 * cfg.layers as u64);
    assert!(saved <= fc_bound, "saved {saved} exceeds FC bound {fc_bound}");
}

// DP multiplies throughput by the replica count (Figure 19's scaling law)
// without changing per-query latency.
#[test]
fn dp_multiplies_throughput_not_latency() {
    let one = evaluate(&tiny(), 1, Strategy::PipelineParallel, 32).unwrap();
    for replicas in [2usize, 4] {
        let dp = evaluate(&tiny(), replicas, Strategy::DataParallel { replicas }, 32).unwrap();
        let ratio = dp.decode_tokens_per_s / one.decode_tokens_per_s;
        let r = replicas as f64;
        assert!((ratio - r).abs() / r < 0.1, "replicas {replicas}: ratio {ratio}");
        assert_eq!(dp.token_latency, one.token_latency, "replicas {replicas}");
        let prefill_ratio = dp.prefill_tokens_per_s / one.prefill_tokens_per_s;
        assert!((prefill_ratio - r).abs() / r < 0.1, "prefill ratio {prefill_ratio}");
    }
}

// The breakdown components always sum to at least the token latency's
// device-visible share, and the mapping context is carried through.
#[test]
fn evaluation_is_self_consistent() {
    let perf = evaluate(&tiny(), 2, Strategy::PipelineParallel, 32).unwrap();
    assert_eq!(perf.context, 32);
    assert!(perf.breakdown.total() > Time::ZERO);
    assert!(perf.prefill_tokens_per_s > 0.0);
    // Query latency is linear in the token count.
    let q1 = perf.query_latency(4, 4);
    let q2 = perf.query_latency(8, 8);
    assert_eq!(q2.as_ps(), 2 * q1.as_ps());
}
