//! Cycle simulation of one transformer block on one device.
//!
//! Mirrors the paper's methodology (§6): "We generate CENT instruction
//! traces for a single block and verify the correctness using a functional
//! simulator" — performance comes from simulating one block trace on the
//! DRAM/PNM timing models and composing across blocks, stages and devices.

use std::collections::BTreeMap;

use cent_compiler::{compile_decode_step, BlockPhase, BlockPlacement};
use cent_device::{CxlDevice, DeviceConfig, LatencyBreakdown};
use cent_dram::ActivityCounters;
use cent_model::ModelConfig;
use cent_pnm::PnmStats;
use cent_types::{CentResult, ChannelId, DeviceId, Time};

/// Timing of one block decode step at one context position.
#[derive(Debug, Clone)]
pub struct BlockTiming {
    /// Wall-clock of the full step on the device.
    pub total: Time,
    /// PIM/PNM/CXL attribution.
    pub breakdown: LatencyBreakdown,
    /// Wall-clock per compiler phase.
    pub phases: BTreeMap<BlockPhase, Time>,
    /// DRAM activity (power model input).
    pub dram: ActivityCounters,
    /// PNM activity (power model input).
    pub pnm: PnmStats,
    /// Instructions executed.
    pub instructions: u64,
}

impl BlockTiming {
    /// Time in the fully-connected phases (scales with tensor parallelism).
    pub fn fc_time(&self) -> Time {
        let fc = [BlockPhase::FcQkv, BlockPhase::FcWo, BlockPhase::FcFfn];
        fc.iter().filter_map(|p| self.phases.get(p)).copied().sum()
    }

    /// Time in phases confined to the master device under TP (attention,
    /// norms, RoPE, KV appends).
    pub fn master_time(&self) -> Time {
        self.total.saturating_sub(self.fc_time())
    }
}

/// Simulates one decode step of a block placed on `channels` channels at
/// `position` (timing only; no data).
///
/// # Errors
///
/// Propagates placement, compilation and execution errors.
pub fn simulate_block_step(
    cfg: &ModelConfig,
    channels: usize,
    position: usize,
) -> CentResult<BlockTiming> {
    let channel_ids: Vec<ChannelId> = (0..channels).map(|c| ChannelId(c as u16)).collect();
    let placement = BlockPlacement::plan(cfg, channel_ids)?;
    simulate_placed_block_step(&placement, position)
}

/// Simulates one decode step of an already-planned block.
///
/// # Errors
///
/// Propagates compilation and execution errors.
pub fn simulate_placed_block_step(
    placement: &BlockPlacement,
    position: usize,
) -> CentResult<BlockTiming> {
    let step = compile_decode_step(placement, position)?;
    let mut dev = CxlDevice::new(DeviceId(0), DeviceConfig::timing_only());
    let mut phases: BTreeMap<BlockPhase, Time> = BTreeMap::new();
    let mut last = Time::ZERO;
    for (inst, tag) in step.trace.iter().zip(&step.tags) {
        dev.execute(inst, None)?;
        let now = dev.busy_until();
        *phases.entry(*tag).or_insert(Time::ZERO) += now.saturating_sub(last);
        last = now;
    }
    let total = dev.busy_until();
    Ok(BlockTiming {
        total,
        breakdown: dev.breakdown(),
        phases,
        dram: dev.dram_activity(),
        pnm: *dev.pnm_activity(),
        instructions: dev.instructions_executed(),
    })
}

/// Averages block timing over a few context positions (attention grows with
/// context; sampling at ¼, ½, ¾ and full mirrors the artifact's `SEQ_GAP`
/// batching).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_block_avg(
    cfg: &ModelConfig,
    channels: usize,
    context: usize,
) -> CentResult<BlockTiming> {
    let samples = [context / 4, context / 2, (3 * context) / 4, context.saturating_sub(1)];
    let channel_ids: Vec<ChannelId> = (0..channels).map(|c| ChannelId(c as u16)).collect();
    let placement = BlockPlacement::plan(cfg, channel_ids)?;
    let mut acc: Option<BlockTiming> = None;
    let mut n = 0u32;
    for &pos in &samples {
        let pos = pos.min(cfg.max_context - 1).max(1);
        let t = simulate_placed_block_step(&placement, pos)?;
        n += 1;
        acc = Some(match acc {
            None => t,
            Some(mut a) => {
                a.total += t.total;
                a.breakdown += t.breakdown;
                for (k, v) in t.phases {
                    *a.phases.entry(k).or_insert(Time::ZERO) += v;
                }
                a.dram.merge(&t.dram);
                a.pnm.merge(&t.pnm);
                a.instructions += t.instructions;
                a
            }
        });
    }
    let mut a = acc.expect("at least one sample");
    let div = |t: Time| Time::from_ps(t.as_ps() / u64::from(n));
    a.total = div(a.total);
    a.breakdown = a.breakdown.scaled(1.0 / f64::from(n));
    for v in a.phases.values_mut() {
        *v = div(*v);
    }
    a.dram = a.dram.scaled(1.0 / f64::from(n));
    a.instructions /= u64::from(n);
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_block_timing_is_positive_and_attributed() {
        let cfg = ModelConfig::tiny();
        let t = simulate_block_step(&cfg, 2, 8).unwrap();
        assert!(t.total > Time::ZERO);
        assert!(t.instructions > 50);
        assert!(t.phases.contains_key(&BlockPhase::FcQkv));
        assert!(t.phases.contains_key(&BlockPhase::Attention));
        let phase_sum: Time = t.phases.values().copied().sum();
        // Per-instruction attribution must sum to the total.
        assert_eq!(phase_sum, t.total);
    }

    #[test]
    fn work_grows_with_context() {
        let cfg = ModelConfig::tiny();
        let early = simulate_block_step(&cfg, 2, 2).unwrap();
        let late = simulate_block_step(&cfg, 2, 60).unwrap();
        // Longer contexts mean more attention segments: more instructions
        // and more MAC beats (wall-clock attribution is too noisy at this
        // scale to compare phase-by-phase).
        assert!(late.instructions > early.instructions);
        assert!(late.dram.mac_beats > early.dram.mac_beats);
    }

    #[test]
    fn more_channels_speed_up_fc() {
        let cfg = ModelConfig::tiny();
        let narrow = simulate_block_step(&cfg, 1, 8).unwrap();
        let wide = simulate_block_step(&cfg, 4, 8).unwrap();
        assert!(wide.fc_time() < narrow.fc_time());
    }

    #[test]
    fn averaged_timing_runs() {
        let cfg = ModelConfig::tiny();
        let avg = simulate_block_avg(&cfg, 2, 32).unwrap();
        assert!(avg.total > Time::ZERO);
    }
}
