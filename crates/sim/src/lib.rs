//! CENT system performance simulator.
//!
//! Follows the paper's methodology (§6): one transformer-block trace is
//! simulated cycle-by-cycle on the GDDR6-PIM/PNM timing models, then
//! composed across blocks, pipeline stages, tensor shards and data-parallel
//! replicas with the CXL fabric model supplying communication costs.
//!
//! * [`simulate_block_step`]/[`simulate_block_avg`] — per-block timing with
//!   phase attribution and activity counters;
//! * [`evaluate`] — throughput/latency/breakdown of a full deployment;
//! * [`qos_sweep`] — the PP↔TP spectrum of Figure 14(b);
//! * [`scalability_sweep`] — the device-count scaling of Figure 19.

#![forbid(unsafe_code)]

mod block_sim;
mod perf;

pub use block_sim::{
    simulate_block_avg, simulate_block_step, simulate_placed_block_step, BlockTiming,
};
pub use perf::{evaluate, qos_sweep, scalability_sweep, CentPerformance, QosPoint, ScalePoint};
