//! System-level performance composition: pipelines, tensor shards, QoS.
//!
//! One simulated block step (see [`crate::block_sim`]) is composed across
//! stages, devices and queries following §5 of the paper:
//!
//! * **PP**: stage interval = block step time (+ the stage-to-stage 16 KB
//!   embedding hop); system emits one query-token per interval; batch =
//!   stage count; per-query token latency = stages × interval.
//! * **TP**: the FC phases shrink by the shard count; attention/norm/RoPE
//!   stay on the master device; every block pays broadcast + gather on the
//!   CXL fabric.
//! * **Hybrid**: TP within a group, PP across groups.
//! * **DP**: replicas multiply throughput.

use cent_compiler::{Strategy, SystemMapping};
use cent_cxl::{CxlFabric, FabricConfig, NodeId};
use cent_device::LatencyBreakdown;
use cent_model::ModelConfig;
use cent_types::consts::host;
use cent_types::{ByteSize, CentResult, DeviceId, Time};

use crate::block_sim::{simulate_block_avg, BlockTiming};

/// Performance of a CENT deployment for one workload point.
#[derive(Debug, Clone)]
pub struct CentPerformance {
    /// The mapping evaluated.
    pub mapping: SystemMapping,
    /// Per-token, per-query latency during decode.
    pub token_latency: Time,
    /// System decode throughput in tokens/second (all queries).
    pub decode_tokens_per_s: f64,
    /// System prefill throughput in tokens/second.
    pub prefill_tokens_per_s: f64,
    /// Per-token latency attribution (PIM/PNM/CXL/host).
    pub breakdown: LatencyBreakdown,
    /// The underlying block timing.
    pub block: BlockTiming,
    /// Average context used for the evaluation.
    pub context: usize,
}

impl CentPerformance {
    /// End-to-end query latency for `prefill` prompt tokens plus `decode`
    /// generated tokens.
    pub fn query_latency(&self, prefill: usize, decode: usize) -> Time {
        // Prefill processes prompt tokens through the same pipeline (§5.5).
        let per_token = self.token_latency;
        Time::from_ps(per_token.as_ps() * (prefill + decode) as u64)
    }

    /// End-to-end throughput in queries/minute for a given output length.
    pub fn queries_per_minute(&self, prefill: usize, decode: usize) -> f64 {
        let tokens = (prefill + decode) as f64;
        self.decode_tokens_per_s * 60.0 / tokens
    }
}

/// Evaluates `cfg` on `devices` CENT devices with `strategy` at `context`.
///
/// # Errors
///
/// Propagates mapping and simulation errors.
pub fn evaluate(
    cfg: &ModelConfig,
    devices: usize,
    strategy: Strategy,
    context: usize,
) -> CentResult<CentPerformance> {
    let mapping = SystemMapping::plan(cfg, devices, strategy)?;
    // Wide TP shards can exceed the Shared Buffer budget; simulate with the
    // largest feasible channel count and rescale the FC phases below.
    let sim_channels = cent_compiler::max_feasible_channels(cfg, mapping.channels_per_block);
    let block = simulate_block_avg(cfg, sim_channels, context)?;
    let mut fabric = CxlFabric::new(FabricConfig::cent(devices.max(2)));
    let emb = mapping.embedding_bytes();

    // Stage-to-stage embedding hop (PP) measured on the fabric model.
    let hop = fabric
        .write(NodeId::Device(DeviceId(0)), NodeId::Device(DeviceId(1)), emb, Time::ZERO)?
        .delivered_at;

    let tp = mapping.tp_degree.max(1);
    let (stage_time, cxl_per_block) = if tp > 1 {
        // TP: FC sharded across the group; master phases unscaled; every
        // block broadcasts the embedding and gathers FC partials.
        let targets: Vec<DeviceId> = (1..tp as u16).map(DeviceId).collect();
        let bcast =
            fabric.broadcast(NodeId::Device(DeviceId(0)), &targets, emb, Time::ZERO)?.completed_at;
        let gather_bytes = ByteSize::bytes(mapping.tp_traffic_per_block().as_bytes() / tp as u64);
        let gather = fabric
            .gather(NodeId::Device(DeviceId(0)), &targets, gather_bytes, Time::ZERO)?
            .delivered_at;
        let comm = bcast + gather;
        // FC work spreads over tp × 32 channels; the simulation used
        // `sim_channels`, so rescale accordingly.
        let shard_channels = tp * cent_types::consts::CHANNELS_PER_DEVICE;
        let fc =
            Time::from_ps(block.fc_time().as_ps() * sim_channels as u64 / shard_channels as u64);
        (fc + block.master_time() + comm, comm)
    } else {
        (block.total, Time::ZERO)
    };

    // Pipeline composition. Under PP, `blocks_per_device` stages run
    // concurrently on one device and share its decoder/PNM front-end; PIM
    // channels are disjoint, so only the PNM/dispatch share serialises.
    // Under TP the blocks execute one at a time, so no sharing applies.
    let pnm_share = if block.total > Time::ZERO {
        block.breakdown.pnm.as_ps() as f64 / block.total.as_ps() as f64
    } else {
        0.0
    };
    let concurrent_blocks = if tp > 1 { 1 } else { mapping.blocks_per_device };
    let sharing = 1.0 + pnm_share * (concurrent_blocks.saturating_sub(1)) as f64;
    let stage_interval = Time::from_ps((stage_time.as_ps() as f64 * sharing) as u64) + hop;

    let stages = if mapping.batch > 1 { cfg.layers } else { 1 };
    let token_latency = if mapping.batch > 1 {
        // PP: a token traverses all stages; the host samples at the end.
        Time::from_ps(stage_interval.as_ps() * cfg.layers as u64) + host::TOP_K_SAMPLING
    } else {
        // TP: all devices advance one block at a time.
        Time::from_ps(stage_interval.as_ps() * cfg.layers as u64) + host::TOP_K_SAMPLING
    };
    let replicas = mapping.replicas.max(1) as f64;
    let decode_tokens_per_s = if mapping.batch > 1 {
        // One query-token exits the pipeline per stage interval.
        replicas / stage_interval.as_secs()
    } else {
        replicas / token_latency.as_secs()
    };
    // Prefill runs prompt tokens through the same path (§5.5); its
    // throughput matches decode token rate at small contexts.
    let prefill_block = simulate_block_avg(cfg, sim_channels, context.min(512))?;
    let prefill_interval = if tp > 1 {
        let shard_channels = tp * cent_types::consts::CHANNELS_PER_DEVICE;
        Time::from_ps(prefill_block.fc_time().as_ps() * sim_channels as u64 / shard_channels as u64)
            + prefill_block.master_time()
            + cxl_per_block
    } else {
        prefill_block.total
    };
    let prefill_tokens_per_s = if mapping.batch > 1 {
        replicas / (prefill_interval.as_secs() * sharing)
    } else {
        replicas / (prefill_interval.as_secs() * cfg.layers as f64)
    };

    let mut breakdown = block.breakdown.scaled(cfg.layers as f64);
    breakdown.cxl += Time::from_ps(cxl_per_block.as_ps() * cfg.layers as u64)
        + Time::from_ps(hop.as_ps() * stages as u64);
    breakdown.host += host::TOP_K_SAMPLING + host::DISPATCH_PER_TOKEN;

    Ok(CentPerformance {
        mapping,
        token_latency,
        decode_tokens_per_s,
        prefill_tokens_per_s,
        breakdown,
        block,
        context,
    })
}

/// A point on the QoS latency/throughput curve (Figure 14b).
#[derive(Debug, Clone)]
pub struct QosPoint {
    /// Strategy label, e.g. "PP=80" or "PP=4 TP=8".
    pub label: String,
    /// Query latency in minutes for the workload.
    pub query_latency_min: f64,
    /// Throughput in queries/minute.
    pub queries_per_min: f64,
}

/// Sweeps the PP↔TP spectrum of §7.1's QoS study.
///
/// # Errors
///
/// Propagates evaluation errors; infeasible mappings are skipped.
pub fn qos_sweep(
    cfg: &ModelConfig,
    devices: usize,
    context: usize,
    prefill: usize,
    decode: usize,
) -> CentResult<Vec<QosPoint>> {
    let mut points = Vec::new();
    let mut strategies: Vec<(String, Strategy)> =
        vec![(format!("PP={}", cfg.layers), Strategy::PipelineParallel)];
    for tp in [2usize, 4, 8, 16] {
        if devices.is_multiple_of(tp) && tp < devices {
            strategies.push((format!("PP={} TP={tp}", devices / tp), Strategy::Hybrid { tp }));
        }
    }
    strategies.push((format!("TP={devices}"), Strategy::TensorParallel));
    for (label, strategy) in strategies {
        match evaluate(cfg, devices, strategy, context) {
            Ok(perf) => {
                let latency = perf.query_latency(prefill, decode);
                points.push(QosPoint {
                    label,
                    query_latency_min: latency.as_secs() / 60.0,
                    queries_per_min: perf.queries_per_minute(prefill, decode),
                });
            }
            Err(_) => continue,
        }
    }
    Ok(points)
}

/// One point of the Figure 19 scalability study.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Devices in the system.
    pub devices: usize,
    /// System decode throughput (tokens/s).
    pub tokens_per_s: f64,
    /// Fraction of devices doing useful work.
    pub utilization: f64,
}

/// Sweeps device counts with PP+DP mapping, reproducing the plateaus of
/// Figure 19 (blocks are never split across devices, so some counts leave
/// devices idle).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn scalability_sweep(
    cfg: &ModelConfig,
    device_counts: &[usize],
    context: usize,
) -> CentResult<Vec<ScalePoint>> {
    let mut out = Vec::new();
    for &devices in device_counts {
        // Choose the best replica count for PP+DP.
        let mut best: Option<(f64, usize, usize)> = None;
        for replicas in 1..=devices {
            if devices % replicas != 0 {
                continue;
            }
            let per = devices / replicas;
            let Ok(mapping) =
                SystemMapping::plan(cfg, devices, Strategy::DataParallel { replicas })
            else {
                continue;
            };
            // Quick analytic score to avoid simulating every option:
            // pipeline throughput ≈ 1/stage_interval ∝ (feasible) channels
            // per block, and data-parallel replicas multiply it.
            let feasible = cent_compiler::max_feasible_channels(cfg, mapping.channels_per_block);
            let score = replicas as f64 * feasible as f64;
            let used = mapping.used_devices * replicas;
            if best.is_none_or(|(s, _, _)| score > s) {
                best = Some((score, replicas, used));
            }
            let _ = per;
        }
        let Some((_, replicas, used)) = best else { continue };
        let perf = evaluate(cfg, devices, Strategy::DataParallel { replicas }, context)?;
        out.push(ScalePoint {
            devices,
            tokens_per_s: perf.decode_tokens_per_s,
            utilization: used as f64 / devices as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny()
    }

    #[test]
    fn pp_evaluation_produces_throughput() {
        let perf = evaluate(&tiny(), 2, Strategy::PipelineParallel, 32).unwrap();
        assert!(perf.decode_tokens_per_s > 0.0);
        assert!(perf.token_latency > Time::ZERO);
        assert!(perf.query_latency(4, 16) > perf.token_latency);
    }

    #[test]
    fn tp_shards_fc_and_pays_cxl() {
        let pp = evaluate(&tiny(), 2, Strategy::PipelineParallel, 32).unwrap();
        let tp = evaluate(&tiny(), 2, Strategy::TensorParallel, 32).unwrap();
        // TP pays CXL broadcast/gather on every block; PP only hops the
        // embedding. (At tiny scale the comm dominates the FC savings —
        // the latency win only materialises for large models, Figure 13a.)
        assert!(tp.breakdown.cxl > pp.breakdown.cxl);
        assert!(pp.decode_tokens_per_s > tp.decode_tokens_per_s);
        assert_eq!(tp.mapping.batch, 1);
    }

    #[test]
    fn qos_sweep_has_pp_and_tp_endpoints() {
        let points = qos_sweep(&tiny(), 2, 32, 4, 12).unwrap();
        assert!(points.len() >= 2);
        assert!(points.iter().any(|p| p.label.starts_with("PP")));
        assert!(points.iter().any(|p| p.label.starts_with("TP")));
    }

    #[test]
    fn scalability_grows_with_devices() {
        let points = scalability_sweep(&tiny(), &[1, 2, 4], 32).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[2].tokens_per_s >= points[0].tokens_per_s);
        for p in &points {
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
        }
    }

    #[test]
    fn data_parallel_multiplies_throughput() {
        let one = evaluate(&tiny(), 1, Strategy::PipelineParallel, 32).unwrap();
        let two = evaluate(&tiny(), 2, Strategy::DataParallel { replicas: 2 }, 32).unwrap();
        let ratio = two.decode_tokens_per_s / one.decode_tokens_per_s;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }
}
