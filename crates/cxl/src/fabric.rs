//! Transaction-level timing model of the CENT CXL fabric.
//!
//! Topology (Figure 4): one CXL switch; the host hangs off an x16 PCIe 6.0
//! link, each of the up-to-4096 devices off an x4 link. The switch supports
//! unicast CXL.mem transactions plus CENT's broadcast/multicast extension
//! (modelled per §6 at half bandwidth and double latency).
//!
//! The model tracks per-link, per-direction occupancy so concurrent
//! transfers contend realistically, and charges the Req/DRS & RWD/NDR
//! round trips the CXL port architecture implies (Figure 6).

use std::collections::BTreeMap;

use cent_types::consts::cxl;
use cent_types::{Bandwidth, ByteSize, CentError, CentResult, DeviceId, Time};

use crate::flit::{flits_for, NodeId, FLIT_BYTES};

/// Configuration of the fabric timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Devices attached to the switch.
    pub devices: usize,
    /// Per-direction bandwidth of a device x4 link.
    pub device_link_bw: Bandwidth,
    /// Per-direction bandwidth of the host x16 link.
    pub host_link_bw: Bandwidth,
    /// One-way switch traversal latency.
    pub switch_latency: Time,
    /// Pack/unpack latency at each port.
    pub port_latency: Time,
    /// Payload efficiency of flits (header/CRC overhead).
    pub flit_efficiency: f64,
    /// Whether the switch is the multicast-capable variant (half bandwidth,
    /// double latency — §6).
    pub multicast_switch: bool,
}

impl FabricConfig {
    /// The paper's configuration for `devices` CXL devices.
    pub fn cent(devices: usize) -> Self {
        FabricConfig {
            devices,
            device_link_bw: cxl::DEVICE_LINK_BW,
            host_link_bw: cxl::HOST_LINK_BW,
            switch_latency: cxl::SWITCH_LATENCY,
            port_latency: cxl::PORT_LATENCY,
            flit_efficiency: cxl::FLIT_EFFICIENCY,
            multicast_switch: true,
        }
    }

    /// A plain CXL 3.0 switch without the multicast extension (ablation).
    pub fn without_multicast(devices: usize) -> Self {
        FabricConfig { multicast_switch: false, ..Self::cent(devices) }
    }

    /// One-way port-to-port latency of a single switch traversal: port
    /// (pack) + switch + port (unpack), switch scaled by the multicast
    /// variant's derating.
    pub fn hop_latency(&self) -> Time {
        let factor = if self.multicast_switch { cxl::MULTICAST_LATENCY_FACTOR } else { 1 };
        self.port_latency + self.switch_latency.times(factor) + self.port_latency
    }

    /// Effective bulk-payload bandwidth of the host x16 link: the raw rate,
    /// derated for the multicast-capable switch and scaled by flit payload
    /// efficiency. Bulk KV-page streams amortise per-flit headers, so
    /// payload bytes move at `raw × derate × efficiency`.
    pub fn host_bulk_bandwidth(&self) -> Bandwidth {
        let derate = if self.multicast_switch { cxl::MULTICAST_BW_DERATE } else { 1.0 };
        self.host_link_bw.scale(derate * self.flit_efficiency)
    }

    /// The same fabric with the host x16 link's bandwidth scaled by
    /// `factor` — the degraded-link view used by fault injection
    /// (`HostLinkDegrade`): [`host_transfer_time`] of any payload scales
    /// by `1/factor` in its serialization term while the hop latency is
    /// unchanged, so spill-cost comparators re-derived from the degraded
    /// fabric shift toward recompute.
    ///
    /// [`host_transfer_time`]: FabricConfig::host_transfer_time
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_host_link_factor(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "host-link factor must be positive");
        FabricConfig { host_link_bw: self.host_link_bw.scale(factor), ..*self }
    }

    /// Uncontended one-way transfer time of `bytes` over the host x16 link:
    /// one switch hop plus serialization at [`host_bulk_bandwidth`]. This is
    /// the swap-tier cost helper (KV pages spilled to CXL host memory, §4.1
    /// topology): a bulk stream, unlike the per-transaction [`CxlFabric`]
    /// model, which additionally tracks contention and round-trip acks.
    ///
    /// [`host_bulk_bandwidth`]: FabricConfig::host_bulk_bandwidth
    pub fn host_transfer_time(&self, bytes: ByteSize) -> Time {
        self.hop_latency() + bytes.transfer_time(self.host_bulk_bandwidth())
    }
}

/// Utilization statistics per link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Bytes sent from the node toward the switch.
    pub tx_bytes: u64,
    /// Bytes received from the switch.
    pub rx_bytes: u64,
    /// Busy time of the transmit direction.
    pub tx_busy: Time,
    /// Busy time of the receive direction.
    pub rx_busy: Time,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    tx_free_at: Time,
    rx_free_at: Time,
}

/// The outcome of one fabric transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the payload is fully visible at the destination.
    pub delivered_at: Time,
    /// When the initiator has the acknowledgement (NDR/DRS) and may proceed.
    pub completed_at: Time,
}

/// The CXL fabric: switch + links + occupancy tracking.
///
/// # Examples
///
/// ```
/// use cent_cxl::{FabricConfig, CxlFabric, NodeId};
/// use cent_types::{ByteSize, DeviceId, Time};
///
/// let mut fabric = CxlFabric::new(FabricConfig::cent(32));
/// // Send a 16 KB embedding vector between pipeline stages (§5.1).
/// let t = fabric
///     .write(
///         NodeId::Device(DeviceId(0)),
///         NodeId::Device(DeviceId(1)),
///         ByteSize::kib(16),
///         Time::ZERO,
///     )
///     .unwrap();
/// // The paper calls this latency negligible versus PIM time (hundreds of µs).
/// assert!(t.completed_at.as_us() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct CxlFabric {
    config: FabricConfig,
    // Keyed by NodeId's total order: deterministic iteration wherever a
    // sweep (Debug, future aggregation) walks the links.
    links: BTreeMap<NodeId, LinkState>,
    stats: BTreeMap<NodeId, LinkStats>,
}

impl CxlFabric {
    /// Creates a fabric with all links idle.
    pub fn new(config: FabricConfig) -> Self {
        CxlFabric { config, links: BTreeMap::new(), stats: BTreeMap::new() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Per-node link statistics.
    pub fn stats(&self, node: NodeId) -> LinkStats {
        self.stats.get(&node).copied().unwrap_or_default()
    }

    fn validate(&self, node: NodeId) -> CentResult<()> {
        match node {
            NodeId::Host => Ok(()),
            NodeId::Device(d) if d.index() < self.config.devices => Ok(()),
            NodeId::Device(d) => Err(CentError::config(format!(
                "{d} not attached (fabric has {} devices)",
                self.config.devices
            ))),
        }
    }

    /// Serialization time of `bytes` on `node`'s link.
    fn ser_time(&self, node: NodeId, bytes: ByteSize) -> Time {
        // Whole flits cross the wire.
        let wire_bytes = flits_for(bytes.as_bytes() as usize) * FLIT_BYTES;
        // Efficiency is already folded into effective_bw via payload scaling;
        // avoid double-charging by using the raw link rate for wire bytes.
        let derate = if self.config.multicast_switch { cxl::MULTICAST_BW_DERATE } else { 1.0 };
        let raw = match node {
            NodeId::Host => self.config.host_link_bw,
            NodeId::Device(_) => self.config.device_link_bw,
        }
        .scale(derate);
        ByteSize::bytes(wire_bytes as u64).transfer_time(raw)
    }

    /// Reserves the transmit direction; returns `(begin, end)`.
    fn occupy_tx(&mut self, node: NodeId, start: Time, dur: Time, bytes: ByteSize) -> (Time, Time) {
        let link = self.links.entry(node).or_default();
        let begin = start.max(link.tx_free_at);
        link.tx_free_at = begin + dur;
        let s = self.stats.entry(node).or_default();
        s.tx_bytes += bytes.as_bytes();
        s.tx_busy += dur;
        (begin, begin + dur)
    }

    /// Reserves the receive direction; returns `(begin, end)`.
    fn occupy_rx(&mut self, node: NodeId, start: Time, dur: Time, bytes: ByteSize) -> (Time, Time) {
        let link = self.links.entry(node).or_default();
        let begin = start.max(link.rx_free_at);
        link.rx_free_at = begin + dur;
        let s = self.stats.entry(node).or_default();
        s.rx_bytes += bytes.as_bytes();
        s.rx_busy += dur;
        (begin, begin + dur)
    }

    /// One CXL write transaction (RWD → NDR): `bytes` from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Fails if either node is not attached or `src == dst`.
    pub fn write(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        now: Time,
    ) -> CentResult<Transfer> {
        self.validate(src)?;
        self.validate(dst)?;
        if src == dst {
            return Err(CentError::ProtocolViolation(format!("{src} writing to itself")));
        }
        let hop = self.config.hop_latency();
        // RWD flits stream cut-through: the first flit reaches the destination
        // one hop after leaving the source; the tail arrives one hop after the
        // slower of the two serializations finishes.
        let (tx_begin, tx_end) = self.occupy_tx(src, now, self.ser_time(src, bytes), bytes);
        let (_, rx_end) = self.occupy_rx(dst, tx_begin + hop, self.ser_time(dst, bytes), bytes);
        let delivered_at = rx_end.max(tx_end + hop);
        // NDR ack: one flit back.
        let ack = ByteSize::bytes(FLIT_BYTES as u64);
        let (ack_begin, _) = self.occupy_tx(dst, delivered_at, self.ser_time(dst, ack), ack);
        let (_, ack_rx_end) = self.occupy_rx(src, ack_begin + hop, self.ser_time(src, ack), ack);
        Ok(Transfer { delivered_at, completed_at: ack_rx_end })
    }

    /// One CXL read transaction (Req → DRS): `src` fetches `bytes` from `dst`.
    ///
    /// # Errors
    ///
    /// Fails if either node is not attached or `src == dst`.
    pub fn read(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        now: Time,
    ) -> CentResult<Transfer> {
        self.validate(src)?;
        self.validate(dst)?;
        if src == dst {
            return Err(CentError::ProtocolViolation(format!("{src} reading from itself")));
        }
        let hop = self.config.hop_latency();
        let req = ByteSize::bytes(FLIT_BYTES as u64);
        let (_, req_end) = self.occupy_tx(src, now, self.ser_time(src, req), req);
        // DRS data streams back over dst uplink then src downlink.
        let (drs_begin, drs_tx_end) =
            self.occupy_tx(dst, req_end + hop, self.ser_time(dst, bytes), bytes);
        let (_, drs_rx_end) =
            self.occupy_rx(src, drs_begin + hop, self.ser_time(src, bytes), bytes);
        let completed_at = drs_rx_end.max(drs_tx_end + hop);
        Ok(Transfer { delivered_at: completed_at, completed_at })
    }

    /// CENT broadcast/multicast: `src` writes `bytes` once; the switch
    /// replicates to every device in `targets`. Completion waits for all
    /// write acknowledgements (the modified CXL port "expects write
    /// acknowledgements from all destination devices", §4.1).
    ///
    /// # Errors
    ///
    /// Fails if the fabric lacks multicast support, a target is not attached,
    /// or `targets` is empty.
    pub fn broadcast(
        &mut self,
        src: NodeId,
        targets: &[DeviceId],
        bytes: ByteSize,
        now: Time,
    ) -> CentResult<Transfer> {
        if !self.config.multicast_switch {
            return Err(CentError::ProtocolViolation(
                "baseline switch has no broadcast support".into(),
            ));
        }
        if targets.is_empty() {
            return Err(CentError::config("broadcast with no targets"));
        }
        self.validate(src)?;
        for &d in targets {
            self.validate(NodeId::Device(d))?;
        }
        let hop = self.config.hop_latency();
        // One serialization on the source uplink...
        let (tx_begin, tx_end) = self.occupy_tx(src, now, self.ser_time(src, bytes), bytes);
        // ...replicated onto each target downlink in parallel (cut-through).
        let mut delivered_at = tx_end + hop;
        for &d in targets {
            let node = NodeId::Device(d);
            if node == src {
                continue;
            }
            let (_, rx_end) =
                self.occupy_rx(node, tx_begin + hop, self.ser_time(node, bytes), bytes);
            delivered_at = delivered_at.max(rx_end);
        }
        // All targets return NDR acks; they contend on the source downlink.
        let ack = ByteSize::bytes(FLIT_BYTES as u64);
        let mut completed_at = delivered_at;
        for &d in targets {
            let node = NodeId::Device(d);
            if node == src {
                continue;
            }
            let (ack_begin, _) = self.occupy_tx(node, delivered_at, self.ser_time(node, ack), ack);
            let (_, ack_rx_end) =
                self.occupy_rx(src, ack_begin + hop, self.ser_time(src, ack), ack);
            completed_at = completed_at.max(ack_rx_end);
        }
        Ok(Transfer { delivered_at, completed_at })
    }

    /// Gather: every node in `srcs` sends `bytes_each` to `dst` (each sender
    /// executes `SEND_CXL`, the receiver executes one `RECV_CXL` per sender;
    /// arrival order is immaterial, §4.1). Returns the completion of the last
    /// arrival.
    ///
    /// # Errors
    ///
    /// Fails if a node is not attached or `srcs` is empty.
    pub fn gather(
        &mut self,
        dst: NodeId,
        srcs: &[DeviceId],
        bytes_each: ByteSize,
        now: Time,
    ) -> CentResult<Transfer> {
        if srcs.is_empty() {
            return Err(CentError::config("gather with no sources"));
        }
        let mut last = Transfer { delivered_at: now, completed_at: now };
        for &s in srcs {
            let node = NodeId::Device(s);
            if node == dst {
                continue;
            }
            let t = self.write(node, dst, bytes_each, now)?;
            last.delivered_at = last.delivered_at.max(t.delivered_at);
            last.completed_at = last.completed_at.max(t.completed_at);
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u16) -> NodeId {
        NodeId::Device(DeviceId(i))
    }

    #[test]
    fn small_write_is_latency_dominated() {
        let mut f = CxlFabric::new(FabricConfig::cent(32));
        let t = f.write(dev(0), dev(1), ByteSize::bytes(64), Time::ZERO).unwrap();
        // 2 hops (data + ack) at 2×25+160 ns each, plus serialization.
        assert!(t.completed_at.as_ns() > 400.0);
        assert!(t.completed_at.as_ns() < 1000.0);
    }

    #[test]
    fn large_write_is_bandwidth_dominated() {
        let mut f = CxlFabric::new(FabricConfig::cent(32));
        // 16 MB over an effective 16 GB/s (x4 PCIe6 halved for multicast
        // switch) ≈ 1.05 ms.
        let t = f.write(dev(0), dev(1), ByteSize::mib(16), Time::ZERO).unwrap();
        assert!(t.completed_at.as_us() > 900.0);
        assert!(t.completed_at.as_us() < 1500.0);
    }

    #[test]
    fn consecutive_writes_contend_on_the_link() {
        let mut f = CxlFabric::new(FabricConfig::cent(32));
        let a = f.write(dev(0), dev(1), ByteSize::kib(256), Time::ZERO).unwrap();
        let b = f.write(dev(0), dev(2), ByteSize::kib(256), Time::ZERO).unwrap();
        // The second write had to wait for the first to clear the uplink.
        assert!(b.completed_at > a.completed_at);
    }

    #[test]
    fn broadcast_beats_serial_unicast() {
        let targets: Vec<DeviceId> = (1..32).map(DeviceId).collect();
        let payload = ByteSize::kib(16);

        let mut mc = CxlFabric::new(FabricConfig::cent(32));
        let bcast = mc.broadcast(dev(0), &targets, payload, Time::ZERO).unwrap();

        let mut uc = CxlFabric::new(FabricConfig::without_multicast(32));
        let mut serial = Time::ZERO;
        for &d in &targets {
            serial = uc.write(dev(0), NodeId::Device(d), payload, serial).unwrap().completed_at;
        }
        assert!(
            bcast.completed_at.as_ns() * 4.0 < serial.as_ns(),
            "broadcast {b} vs serial {s}",
            b = bcast.completed_at,
            s = serial
        );
    }

    #[test]
    fn gather_serializes_on_destination_downlink() {
        let mut f = CxlFabric::new(FabricConfig::cent(32));
        let srcs: Vec<DeviceId> = (1..9).map(DeviceId).collect();
        let one = f.clone().write(dev(1), dev(0), ByteSize::kib(64), Time::ZERO).unwrap();
        let all = f.gather(dev(0), &srcs, ByteSize::kib(64), Time::ZERO).unwrap();
        // Eight senders into one x4 downlink: several times one transfer.
        assert!(all.delivered_at.as_ns() > one.delivered_at.as_ns() * 3.0);
    }

    #[test]
    fn unattached_device_rejected() {
        let mut f = CxlFabric::new(FabricConfig::cent(4));
        assert!(f.write(dev(0), dev(7), ByteSize::kib(1), Time::ZERO).is_err());
        assert!(f.write(dev(2), dev(2), ByteSize::kib(1), Time::ZERO).is_err());
    }

    #[test]
    fn baseline_switch_refuses_broadcast() {
        let mut f = CxlFabric::new(FabricConfig::without_multicast(8));
        let err = f.broadcast(dev(0), &[DeviceId(1)], ByteSize::kib(1), Time::ZERO).unwrap_err();
        assert!(err.to_string().contains("no broadcast"));
    }

    #[test]
    fn stats_account_traffic() {
        let mut f = CxlFabric::new(FabricConfig::cent(8));
        f.write(dev(0), dev(1), ByteSize::kib(4), Time::ZERO).unwrap();
        let s = f.stats(dev(0));
        assert!(s.tx_bytes >= 4096);
        assert!(s.tx_busy > Time::ZERO);
        let r = f.stats(dev(1));
        assert!(r.rx_bytes >= 4096);
    }

    #[test]
    fn host_transfer_time_is_hop_plus_serialization() {
        let cfg = FabricConfig::cent(32);
        // Zero bytes: pure hop latency (2×25 ns ports + 2×80 ns switch).
        assert_eq!(cfg.host_transfer_time(ByteSize::ZERO), cfg.hop_latency());
        assert_eq!(cfg.hop_latency(), Time::from_ns(210));
        // 1 GiB at 128 GB/s × 0.5 multicast derate × 0.92 efficiency
        // ≈ 58.88 GB/s → ~18.2 ms, latency negligible.
        let t = cfg.host_transfer_time(ByteSize::gib(1));
        assert!((17.0..20.0).contains(&t.as_ms()), "bulk transfer {t}");
        // The baseline switch moves the same payload twice as fast.
        let plain = FabricConfig::without_multicast(32);
        assert!(plain.host_transfer_time(ByteSize::gib(1)).as_ms() < t.as_ms() / 1.9);
    }

    #[test]
    fn host_link_degrade_scales_serialization_not_latency() {
        let cfg = FabricConfig::cent(32);
        let slow = cfg.with_host_link_factor(0.25);
        assert_eq!(slow.hop_latency(), cfg.hop_latency());
        assert_eq!(slow.host_transfer_time(ByteSize::ZERO), cfg.host_transfer_time(ByteSize::ZERO));
        let base = cfg.host_transfer_time(ByteSize::gib(1)).as_secs();
        let degraded = slow.host_transfer_time(ByteSize::gib(1)).as_secs();
        // Serialization dominates at 1 GiB, so the ratio is ~4×.
        assert!((3.9..4.1).contains(&(degraded / base)), "ratio {}", degraded / base);
    }

    #[test]
    fn host_link_is_faster_than_device_link() {
        let mut f = CxlFabric::new(FabricConfig::cent(8));
        let from_host =
            f.clone().write(NodeId::Host, dev(1), ByteSize::mib(1), Time::ZERO).unwrap();
        let from_dev = f.write(dev(0), dev(1), ByteSize::mib(1), Time::ZERO).unwrap();
        assert!(from_host.completed_at < from_dev.completed_at);
    }
}
