//! CXL 3.0 Port-Based-Routing (PBR) flits, including CENT's broadcast
//! extension.
//!
//! CXL 3.0 on PCIe 6.0 moves 256-byte flits. CENT repurposes one of the
//! reserved header codes in the PBR Header slot (H-slot) to mark *broadcast*
//! flits: the switch decodes the H-slot for routing, and on seeing the
//! reserved code forwards the flit to every device named in a device-ID mask
//! carried in the header (§4.1). This module packs and unpacks those flits.

use cent_types::{CentError, CentResult, DeviceId};

/// Flit size on the PCIe 6.0 physical layer.
pub const FLIT_BYTES: usize = 256;

/// Header-slot size we model (opcode + routing + mask + length).
pub const HEADER_BYTES: usize = 16;

/// Payload capacity of one flit.
pub const FLIT_PAYLOAD: usize = FLIT_BYTES - HEADER_BYTES - 4; // 4 B CRC slice

/// Transaction opcodes carried in the H-slot.
///
/// Reads are a `Req` answered by `Drs` (data with response); writes are a
/// `Rwd` (request with data) answered by `Ndr` (no-data response). `Bcast` is
/// the reserved-code broadcast write CENT adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitOpcode {
    /// Read request (no payload).
    Req,
    /// Data response concluding a read.
    Drs,
    /// Write request carrying data.
    Rwd,
    /// No-data response acknowledging a write.
    Ndr,
    /// Broadcast write using the reserved H-slot code (CENT extension).
    Bcast,
}

impl FlitOpcode {
    fn code(self) -> u8 {
        match self {
            FlitOpcode::Req => 0x1,
            FlitOpcode::Drs => 0x2,
            FlitOpcode::Rwd => 0x3,
            FlitOpcode::Ndr => 0x4,
            // The reserved header code CENT claims for broadcast.
            FlitOpcode::Bcast => 0xE,
        }
    }

    fn from_code(code: u8) -> CentResult<Self> {
        Ok(match code {
            0x1 => FlitOpcode::Req,
            0x2 => FlitOpcode::Drs,
            0x3 => FlitOpcode::Rwd,
            0x4 => FlitOpcode::Ndr,
            0xE => FlitOpcode::Bcast,
            other => {
                return Err(CentError::ProtocolViolation(format!(
                    "unknown H-slot opcode {other:#x}"
                )))
            }
        })
    }
}

/// A node on the CXL fabric: the host or one of the devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The host CPU behind the x16 link.
    Host,
    /// A CXL device behind an x4 link.
    Device(DeviceId),
}

impl NodeId {
    fn encode(self) -> u16 {
        match self {
            NodeId::Host => 0xFFFF,
            NodeId::Device(d) => d.0,
        }
    }

    fn decode(raw: u16) -> NodeId {
        if raw == 0xFFFF {
            NodeId::Host
        } else {
            NodeId::Device(DeviceId(raw))
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Host => write!(f, "host"),
            NodeId::Device(d) => write!(f, "{d}"),
        }
    }
}

/// A single PBR flit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// Transaction type.
    pub opcode: FlitOpcode,
    /// Sending node.
    pub src: NodeId,
    /// Destination node (ignored for broadcast, which uses `dv_mask`).
    pub dst: NodeId,
    /// Device-ID mask for broadcast flits: bit `i` targets device `i`
    /// (CENT modifies the CXL port to carry this in the header slot).
    pub dv_mask: u64,
    /// Payload carried in the data slots.
    pub payload: Vec<u8>,
}

impl Flit {
    /// Builds a unicast write flit.
    pub fn write(src: NodeId, dst: NodeId, payload: Vec<u8>) -> Self {
        Flit { opcode: FlitOpcode::Rwd, src, dst, dv_mask: 0, payload }
    }

    /// Builds a broadcast flit targeting the devices in `dv_mask`.
    pub fn broadcast(src: NodeId, dv_mask: u64, payload: Vec<u8>) -> Self {
        Flit { opcode: FlitOpcode::Bcast, src, dst: NodeId::Host, dv_mask, payload }
    }

    /// Serialises into wire bytes (header slot + payload + CRC placeholder).
    ///
    /// # Errors
    ///
    /// Fails if the payload exceeds [`FLIT_PAYLOAD`].
    pub fn pack(&self) -> CentResult<Vec<u8>> {
        if self.payload.len() > FLIT_PAYLOAD {
            return Err(CentError::ProtocolViolation(format!(
                "payload of {} bytes exceeds flit capacity {FLIT_PAYLOAD}",
                self.payload.len()
            )));
        }
        let mut buf = Vec::with_capacity(FLIT_BYTES);
        buf.push(self.opcode.code());
        buf.push(0); // reserved
        buf.extend_from_slice(&self.src.encode().to_be_bytes());
        buf.extend_from_slice(&self.dst.encode().to_be_bytes());
        buf.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        buf.extend_from_slice(&self.dv_mask.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        // CRC over header+payload (simple sum; stands in for the real CRC).
        let crc: u32 = buf.iter().map(|&b| u32::from(b)).sum();
        buf.extend_from_slice(&crc.to_be_bytes());
        Ok(buf)
    }

    /// Parses wire bytes back into a flit, verifying the CRC.
    ///
    /// # Errors
    ///
    /// Fails on short input, bad opcode or CRC mismatch.
    pub fn unpack(wire: &[u8]) -> CentResult<Flit> {
        if wire.len() < HEADER_BYTES + 4 {
            return Err(CentError::ProtocolViolation("truncated flit".into()));
        }
        let body = &wire[..wire.len() - 4];
        let take_u16 = |at: usize| u16::from_be_bytes([wire[at], wire[at + 1]]);
        let opcode = FlitOpcode::from_code(wire[0])?;
        let _reserved = wire[1];
        let src = NodeId::decode(take_u16(2));
        let dst = NodeId::decode(take_u16(4));
        let len = take_u16(6) as usize;
        let dv_mask = u64::from_be_bytes(wire[8..16].try_into().expect("8-byte slice"));
        if wire.len() < HEADER_BYTES + len + 4 {
            return Err(CentError::ProtocolViolation("flit payload truncated".into()));
        }
        let payload = wire[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        let crc_at = HEADER_BYTES + len;
        let crc = u32::from_be_bytes(wire[crc_at..crc_at + 4].try_into().expect("4-byte slice"));
        let expect: u32 = body.iter().map(|&b| u32::from(b)).sum();
        if crc != expect {
            return Err(CentError::ProtocolViolation(format!(
                "flit CRC mismatch: {crc:#x} != {expect:#x}"
            )));
        }
        Ok(Flit { opcode, src, dst, dv_mask, payload })
    }
}

/// Number of flits needed to move `bytes` of payload.
pub fn flits_for(bytes: usize) -> usize {
    bytes.div_ceil(FLIT_PAYLOAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let payload = vec![7u8; 100];
        let flit = Flit::write(NodeId::Device(DeviceId(3)), NodeId::Device(DeviceId(9)), payload);
        let wire = flit.pack().unwrap();
        let back = Flit::unpack(&wire).unwrap();
        assert_eq!(back, flit);
    }

    #[test]
    fn broadcast_carries_device_mask() {
        let flit = Flit::broadcast(NodeId::Host, 0b1011, b"emb".to_vec());
        let back = Flit::unpack(&flit.pack().unwrap()).unwrap();
        assert_eq!(back.opcode, FlitOpcode::Bcast);
        assert_eq!(back.dv_mask, 0b1011);
    }

    #[test]
    fn oversized_payload_rejected() {
        let flit =
            Flit::write(NodeId::Host, NodeId::Device(DeviceId(0)), vec![0u8; FLIT_PAYLOAD + 1]);
        assert!(flit.pack().is_err());
    }

    #[test]
    fn corrupted_crc_detected() {
        let flit = Flit::write(NodeId::Host, NodeId::Device(DeviceId(0)), b"x".to_vec());
        let mut wire = flit.pack().unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert!(Flit::unpack(&wire).is_err());
    }

    #[test]
    fn flit_count_for_transfers() {
        assert_eq!(flits_for(0), 1);
        assert_eq!(flits_for(FLIT_PAYLOAD), 1);
        assert_eq!(flits_for(FLIT_PAYLOAD + 1), 2);
        // A 16 KB embedding vector (Llama2-70B, §5.1).
        assert_eq!(flits_for(16 * 1024), 70);
    }

    #[test]
    fn host_node_encoding() {
        let flit = Flit::write(NodeId::Host, NodeId::Host, Vec::new());
        let back = Flit::unpack(&flit.pack().unwrap()).unwrap();
        assert_eq!(back.src, NodeId::Host);
        assert_eq!(back.dst, NodeId::Host);
    }
}
