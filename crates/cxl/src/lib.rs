//! CXL 3.0 fabric model for CENT: switch, ports, flits and the custom
//! broadcast/multicast primitives.
//!
//! CENT interconnects up to 4096 CXL devices through a PBR switch on PCIe 6.0
//! (x16 to the host, x4 per device) and extends the protocol with a broadcast
//! primitive encoded in a reserved H-slot header code (§4.1 of the paper).
//! This crate provides:
//!
//! * [`Flit`] — PBR flit pack/unpack incl. the broadcast device mask;
//! * [`CxlFabric`] — a transaction-level timing model with per-link
//!   contention, Req/DRS + RWD/NDR round trips and the multicast-switch
//!   derating of §6 (half bandwidth, double latency);
//! * [`CommunicationEngine`] — functional send/recv/broadcast/gather with
//!   real Shared Buffer payloads, matching the blocking semantics of
//!   `RECV_CXL` and the non-blocking `SEND_CXL`/`BCAST_CXL`;
//! * [`SharedKvPool`] — the bounded, per-link-serialized switch-attached
//!   KV tier a disaggregated prefill/decode fleet hands contexts through.

#![forbid(unsafe_code)]

mod fabric;
mod flit;
mod pool;
mod primitives;

pub use fabric::{CxlFabric, FabricConfig, LinkStats, Transfer};
pub use flit::{flits_for, Flit, FlitOpcode, NodeId, FLIT_BYTES, FLIT_PAYLOAD, HEADER_BYTES};
pub use pool::{PoolEntry, SharedKvPool};
pub use primitives::{CommunicationEngine, Message};
