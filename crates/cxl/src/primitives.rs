//! Functional peer-to-peer and collective communication primitives.
//!
//! The fabric model in [`crate::fabric`] answers *when* data moves; this
//! module answers *what* moves: it implements the SEND_CXL / RECV_CXL /
//! BCAST_CXL semantics of §4.1 with real payloads, so the device-level
//! functional simulation can pass embedding vectors between devices exactly
//! like the hardware would.
//!
//! Semantics to note from the paper:
//! * `SEND_CXL` is **non-blocking** at the sender;
//! * `RECV_CXL` is **blocking** and names **no device ID** — any arrived
//!   message satisfies it, making gather order-insensitive;
//! * a send/receive pair constitutes one CXL write transaction.

use std::collections::{BTreeMap, VecDeque};

use cent_types::{Beat, ByteSize, CentError, CentResult, DeviceId, SbSlot, Time};

use crate::fabric::{CxlFabric, Transfer};
use crate::flit::NodeId;

/// A message in flight or delivered: a run of Shared Buffer beats.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Destination Shared Buffer slot named by the sender's `SEND_CXL Rd`.
    pub dst_slot: u16,
    /// Payload beats (256-bit each).
    pub beats: Vec<Beat>,
    /// Time the payload is visible in the destination Shared Buffer.
    pub delivered_at: Time,
}

impl Message {
    /// Payload size in bytes.
    pub fn byte_size(&self) -> ByteSize {
        ByteSize::bytes(self.beats.len() as u64 * 32)
    }
}

/// Functional mailbox layer over the timing fabric.
///
/// # Examples
///
/// ```
/// use cent_cxl::{CommunicationEngine, FabricConfig, NodeId};
/// use cent_types::{Bf16, DeviceId, Time, ZERO_BEAT};
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let mut comm = CommunicationEngine::new(FabricConfig::cent(4));
/// let mut beat = ZERO_BEAT;
/// beat[0] = Bf16::from_f32(1.0);
/// comm.send(DeviceId(0), DeviceId(1), vec![beat], Time::ZERO)?;
/// let msg = comm.recv(DeviceId(1))?; // blocking receive, no sender named
/// assert_eq!(msg.beats[0][0].to_f32(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CommunicationEngine {
    fabric: CxlFabric,
    inboxes: BTreeMap<DeviceId, VecDeque<Message>>,
}

impl CommunicationEngine {
    /// Creates the engine over a fresh fabric.
    pub fn new(config: crate::fabric::FabricConfig) -> Self {
        CommunicationEngine { fabric: CxlFabric::new(config), inboxes: BTreeMap::new() }
    }

    /// Access to the underlying timing fabric (stats, raw transfers).
    pub fn fabric(&self) -> &CxlFabric {
        &self.fabric
    }

    /// Mutable access to the underlying fabric.
    pub fn fabric_mut(&mut self) -> &mut CxlFabric {
        &mut self.fabric
    }

    /// `SEND_CXL DVid Rs Rd`: non-blocking send of `beats` to `dst`.
    ///
    /// # Errors
    ///
    /// Propagates fabric validation errors.
    pub fn send(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        beats: Vec<Beat>,
        now: Time,
    ) -> CentResult<Transfer> {
        self.send_to_slot(src, dst, SbSlot(0), beats, now)
    }

    /// `SEND_CXL DVid Rs Rd`: send naming the destination Shared Buffer slot.
    ///
    /// # Errors
    ///
    /// Propagates fabric validation errors.
    pub fn send_to_slot(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        dst_slot: SbSlot,
        beats: Vec<Beat>,
        now: Time,
    ) -> CentResult<Transfer> {
        let bytes = ByteSize::bytes(beats.len() as u64 * 32);
        let t = self.fabric.write(NodeId::Device(src), NodeId::Device(dst), bytes, now)?;
        self.inboxes.entry(dst).or_default().push_back(Message {
            src: NodeId::Device(src),
            dst_slot: dst_slot.0,
            beats,
            delivered_at: t.delivered_at,
        });
        Ok(t)
    }

    /// `RECV_CXL`: blocking receive at `dst`; pops the earliest-delivered
    /// message regardless of sender.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::ProtocolViolation`] if no message is pending — in
    /// hardware the device would stall forever, which is a trace bug.
    pub fn recv(&mut self, dst: DeviceId) -> CentResult<Message> {
        let inbox = self.inboxes.entry(dst).or_default();
        // RECV takes whatever arrives first.
        let min_idx = inbox
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.delivered_at)
            .map(|(i, _)| i)
            .ok_or_else(|| {
                CentError::ProtocolViolation(format!("RECV_CXL on {dst} with empty inbox"))
            })?;
        Ok(inbox.remove(min_idx).expect("index valid"))
    }

    /// Number of undelivered messages at `dst`.
    pub fn pending(&self, dst: DeviceId) -> usize {
        self.inboxes.get(&dst).map_or(0, VecDeque::len)
    }

    /// `BCAST_CXL DVcount Rs Rd`: broadcast `beats` from `src` to the
    /// `targets` (the multicast primitive is the same mechanism with a
    /// sparser device mask).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (e.g. baseline switch without multicast).
    pub fn broadcast(
        &mut self,
        src: DeviceId,
        targets: &[DeviceId],
        beats: Vec<Beat>,
        now: Time,
    ) -> CentResult<Transfer> {
        self.broadcast_to_slot(src, targets, SbSlot(0), beats, now)
    }

    /// Broadcast naming the destination Shared Buffer slot on every target.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn broadcast_to_slot(
        &mut self,
        src: DeviceId,
        targets: &[DeviceId],
        dst_slot: SbSlot,
        beats: Vec<Beat>,
        now: Time,
    ) -> CentResult<Transfer> {
        let bytes = ByteSize::bytes(beats.len() as u64 * 32);
        let t = self.fabric.broadcast(NodeId::Device(src), targets, bytes, now)?;
        for &d in targets {
            if d != src {
                self.inboxes.entry(d).or_default().push_back(Message {
                    src: NodeId::Device(src),
                    dst_slot: dst_slot.0,
                    beats: beats.clone(),
                    delivered_at: t.delivered_at,
                });
            }
        }
        Ok(t)
    }

    /// Gather: every device in `srcs` sends its beats to `dst`; returns the
    /// collected messages sorted by delivery time (the arrival order the
    /// receiver's RECV_CXL sequence would observe).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn gather(
        &mut self,
        dst: DeviceId,
        contributions: &[(DeviceId, Vec<Beat>)],
        now: Time,
    ) -> CentResult<Vec<Message>> {
        for (src, beats) in contributions {
            if *src != dst {
                self.send(*src, dst, beats.clone(), now)?;
            }
        }
        let mut got = Vec::with_capacity(contributions.len());
        for _ in 0..contributions.iter().filter(|(s, _)| *s != dst).count() {
            got.push(self.recv(dst)?);
        }
        got.sort_by_key(|m| m.delivered_at);
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use cent_types::{Bf16, ZERO_BEAT};

    fn beat(v: f32) -> Beat {
        let mut b = ZERO_BEAT;
        b[0] = Bf16::from_f32(v);
        b
    }

    #[test]
    fn send_recv_pair_is_one_write_transaction() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(4));
        let t = comm.send(DeviceId(0), DeviceId(1), vec![beat(5.0)], Time::ZERO).unwrap();
        assert!(t.completed_at > Time::ZERO);
        let msg = comm.recv(DeviceId(1)).unwrap();
        assert_eq!(msg.beats[0][0].to_f32(), 5.0);
        assert_eq!(msg.src, NodeId::Device(DeviceId(0)));
        assert_eq!(comm.pending(DeviceId(1)), 0);
    }

    #[test]
    fn recv_on_empty_inbox_is_a_trace_bug() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(4));
        assert!(comm.recv(DeviceId(2)).is_err());
    }

    #[test]
    fn recv_returns_earliest_delivery_first() {
        // Construct an inbox whose push order differs from delivery order;
        // RECV_CXL must surface the earliest-arrived flits first.
        let mut comm = CommunicationEngine::new(FabricConfig::cent(4));
        let inbox = comm.inboxes.entry(DeviceId(3)).or_default();
        inbox.push_back(Message {
            src: NodeId::Device(DeviceId(0)),
            dst_slot: 0,
            beats: vec![beat(1.0)],
            delivered_at: Time::from_us(8),
        });
        inbox.push_back(Message {
            src: NodeId::Device(DeviceId(1)),
            dst_slot: 0,
            beats: vec![beat(2.0)],
            delivered_at: Time::from_ns(500),
        });
        let first = comm.recv(DeviceId(3)).unwrap();
        assert_eq!(first.beats[0][0].to_f32(), 2.0);
        let second = comm.recv(DeviceId(3)).unwrap();
        assert_eq!(second.beats[0][0].to_f32(), 1.0);
    }

    #[test]
    fn broadcast_reaches_all_targets() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(8));
        let targets: Vec<DeviceId> = (1..8).map(DeviceId).collect();
        comm.broadcast(DeviceId(0), &targets, vec![beat(7.0); 512], Time::ZERO).unwrap();
        for d in &targets {
            let msg = comm.recv(*d).unwrap();
            assert_eq!(msg.beats.len(), 512);
            assert_eq!(msg.beats[0][0].to_f32(), 7.0);
        }
    }

    #[test]
    fn gather_collects_all_contributions() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(8));
        let contributions: Vec<(DeviceId, Vec<Beat>)> =
            (1..5).map(|i| (DeviceId(i), vec![beat(i as f32)])).collect();
        let msgs = comm.gather(DeviceId(0), &contributions, Time::ZERO).unwrap();
        assert_eq!(msgs.len(), 4);
        let mut values: Vec<f32> = msgs.iter().map(|m| m.beats[0][0].to_f32()).collect();
        values.sort_by(f32::total_cmp);
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn message_byte_size() {
        let m = Message {
            src: NodeId::Host,
            dst_slot: 0,
            beats: vec![ZERO_BEAT; 512],
            delivered_at: Time::ZERO,
        };
        // A 16 KB embedding vector is 512 beats.
        assert_eq!(m.byte_size(), ByteSize::kib(16));
    }
}
