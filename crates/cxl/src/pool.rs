//! The shared switch-attached KV pool of a disaggregated fleet.
//!
//! In a prefill/decode-disaggregated deployment the KV pages of a finished
//! prompt do not live in any replica group's private pool: the prefill
//! group *publishes* them over its fabric link into a bounded pool hanging
//! off the PBR switch, and a decode group later *claims* them and streams
//! tokens. [`SharedKvPool`] is the deterministic bookkeeping core of that
//! tier:
//!
//! * **bounded** — capacity is reserved when a publish is *scheduled*, so
//!   the pool can never be overcommitted by transfers still in flight;
//!   a publish that does not fit is refused (the caller defers it and
//!   retries — fabric-level backpressure);
//! * **per-link serialized** — each prefill group owns one egress link to
//!   the switch, and its publishes stream through it back to back, like
//!   the per-replica swap engines of the serving layer;
//! * **exactly-once** — an entry is keyed by request id, becomes claimable
//!   when its publish transfer completes, and leaves the pool on claim.
//!
//! Transfer *durations* are supplied by the caller (the cost model lives
//! above this crate); the pool owns capacity, link serialization and the
//! exact integer occupancy integral (token·ps) the fleet report turns into
//! a time-weighted occupancy fraction.
//!
//! # Durability: parked copies
//!
//! A claim normally hands the KV pages to the decode group and the pool
//! forgets them. A *durable* deployment instead **parks** a copy at claim
//! time ([`park`](SharedKvPool::park)): the copy holds no capacity
//! reservation — it can never refuse a publish, and it contributes nothing
//! to the peak or the occupancy integral, so a fault-free run with
//! durability on is bit-identical to one without — but it keeps the
//! context [`rescue`](SharedKvPool::rescue)-able should the claiming group
//! crash. Parked copies are a best-effort cache of the physical slack:
//! when a publish needs the room they are evicted oldest-first, and an
//! evicted context must fall back to re-prefill.

use cent_types::Time;
use std::collections::BTreeMap;

/// One published-but-unclaimed KV context resident in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolEntry {
    /// KV tokens the entry holds (its capacity reservation).
    pub tokens: u64,
    /// Instant the publish transfer started on the egress link.
    pub started: Time,
    /// Instant the publish transfer completed — the entry is claimable
    /// from here on.
    pub visible: Time,
}

/// Bounded, per-link-serialized shared KV pool (see the module docs).
#[derive(Debug, Clone)]
pub struct SharedKvPool {
    capacity_tokens: u64,
    /// Egress-link free instants, one per publishing group.
    link_free: Vec<Time>,
    /// Live entries by raw request id.
    entries: BTreeMap<u64, PoolEntry>,
    used_tokens: u64,
    peak_tokens: u64,
    /// Exact occupancy integral in token·ps, charged per entry over
    /// `[visible, claim)` at claim time.
    occupancy_token_ps: u128,
    publishes: u64,
    claims: u64,
    refusals: u64,
    /// Durable copies parked at claim time, by raw request id:
    /// `(parked_at, tokens)`. Hold no capacity reservation.
    parked: BTreeMap<u64, (Time, u64)>,
    parked_tokens: u64,
    evictions: u64,
}

impl SharedKvPool {
    /// An empty pool of `capacity_tokens` KV tokens with `links` egress
    /// links.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_tokens` is zero or `links` is zero.
    pub fn new(capacity_tokens: u64, links: usize) -> Self {
        assert!(capacity_tokens > 0, "a shared pool needs capacity");
        assert!(links > 0, "a shared pool needs at least one egress link");
        SharedKvPool {
            capacity_tokens,
            link_free: vec![Time::ZERO; links],
            entries: BTreeMap::new(),
            used_tokens: 0,
            peak_tokens: 0,
            occupancy_token_ps: 0,
            publishes: 0,
            claims: 0,
            refusals: 0,
            parked: BTreeMap::new(),
            parked_tokens: 0,
            evictions: 0,
        }
    }

    /// The pool's capacity bound in KV tokens.
    pub fn capacity_tokens(&self) -> u64 {
        self.capacity_tokens
    }

    /// KV tokens currently reserved (published or publish-in-flight).
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Largest reservation level ever observed — never exceeds
    /// [`capacity_tokens`](Self::capacity_tokens) by construction.
    pub fn peak_tokens(&self) -> u64 {
        self.peak_tokens
    }

    /// Number of live (unclaimed) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes completed so far.
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// Claims completed so far.
    pub fn claims(&self) -> u64 {
        self.claims
    }

    /// Publish attempts refused for capacity (each refused *attempt*
    /// counts — a deferred publish retried and refused again counts
    /// twice).
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Schedules a publish of `tokens` KV tokens onto egress `link`: the
    /// transfer starts no earlier than `ready` (the prompt's completion
    /// instant) and no earlier than the link frees, takes `transfer` on
    /// the wire, and the entry becomes claimable when it completes.
    /// Capacity is reserved immediately. Returns the completion instant,
    /// or `None` — with no state change beyond the refusal counter — when
    /// the reservation would exceed the bound.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range, `tokens` is zero, or `id` is
    /// already resident.
    pub fn try_publish(
        &mut self,
        id: u64,
        tokens: u64,
        ready: Time,
        link: usize,
        transfer: Time,
    ) -> Option<Time> {
        assert!(link < self.link_free.len(), "pool has no egress link {link}");
        assert!(tokens > 0, "a publish needs at least one KV token");
        if self.used_tokens + tokens > self.capacity_tokens {
            self.refusals += 1;
            return None;
        }
        let started = ready.max(self.link_free[link]);
        let visible = started + transfer;
        self.link_free[link] = visible;
        self.used_tokens += tokens;
        self.peak_tokens = self.peak_tokens.max(self.used_tokens);
        // Parked copies only borrow the physical slack: evict the oldest
        // ones until the live reservations fit alongside what remains.
        while self.used_tokens + self.parked_tokens > self.capacity_tokens {
            let oldest = self
                .parked
                .iter()
                .min_by_key(|(id, (at, _))| (*at, **id))
                .map(|(id, _)| *id)
                .expect("parked copies cannot outgrow capacity without entries");
            let (_, evicted) = self.parked.remove(&oldest).expect("oldest parked copy resident");
            self.parked_tokens -= evicted;
            self.evictions += 1;
        }
        let prev = self.entries.insert(id, PoolEntry { tokens, started, visible });
        assert!(prev.is_none(), "request {id} published twice");
        self.publishes += 1;
        Some(visible)
    }

    /// Claims entry `id` at instant `at`, releasing its reservation and
    /// charging its occupancy (`tokens × (at − visible)`) to the
    /// integral. Returns the released entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident or `at` precedes the entry's
    /// visibility instant.
    pub fn claim(&mut self, id: u64, at: Time) -> PoolEntry {
        let entry = self.entries.remove(&id).expect("claimed entry is resident");
        assert!(at >= entry.visible, "claim at {at} precedes publish completion {}", entry.visible);
        self.occupancy_token_ps +=
            u128::from(entry.tokens) * u128::from(at.saturating_sub(entry.visible).as_ps());
        self.used_tokens = self
            .used_tokens
            .checked_sub(entry.tokens)
            .expect("pool released more tokens than it held");
        self.claims += 1;
        entry
    }

    /// Parks a durable copy of `tokens` KV tokens for request `id` at
    /// instant `at` — called right after [`claim`](Self::claim) in a
    /// durable deployment. The copy holds no capacity reservation (see the
    /// module docs) and stays rescueable until evicted by a publish that
    /// needs the room, [`rescue`](Self::rescue)d, or
    /// [`discard_parked`](Self::discard_parked)ed.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero or `id` already has a parked copy.
    pub fn park(&mut self, id: u64, tokens: u64, at: Time) {
        assert!(tokens > 0, "a parked copy needs at least one KV token");
        let prev = self.parked.insert(id, (at, tokens));
        assert!(prev.is_none(), "request {id} parked twice");
        self.parked_tokens += tokens;
    }

    /// Takes the parked copy for `id` out of the pool, returning its token
    /// count — the failover path when the claiming decode group crashed.
    /// `None` means the copy was never parked or has been evicted, and the
    /// context must re-prefill.
    pub fn rescue(&mut self, id: u64) -> Option<u64> {
        let (_, tokens) = self.parked.remove(&id)?;
        self.parked_tokens -= tokens;
        Some(tokens)
    }

    /// Discards the parked copy for `id` — the context completed normally
    /// and no longer needs a recovery copy. Returns whether a copy was
    /// still resident.
    pub fn discard_parked(&mut self, id: u64) -> bool {
        match self.parked.remove(&id) {
            Some((_, tokens)) => {
                self.parked_tokens -= tokens;
                true
            }
            None => false,
        }
    }

    /// KV tokens held by parked durable copies (outside the capacity
    /// reservation — see the module docs).
    pub fn parked_tokens(&self) -> u64 {
        self.parked_tokens
    }

    /// Number of parked durable copies resident.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Parked copies evicted to make physical room for later publishes.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The pool-resident entry for `id`, if any.
    pub fn entry(&self, id: u64) -> Option<&PoolEntry> {
        self.entries.get(&id)
    }

    /// Accumulated occupancy in token-seconds: each claimed entry
    /// contributed `tokens × (claim − visible)`. Divide by
    /// `capacity × makespan` for a time-weighted occupancy fraction.
    pub fn occupancy_token_seconds(&self) -> f64 {
        self.occupancy_token_ps as f64 * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn capacity_is_reserved_at_schedule_time() {
        let mut pool = SharedKvPool::new(100, 1);
        let done = pool.try_publish(1, 60, t(0), 0, t(10)).expect("fits");
        assert_eq!(done, t(10));
        assert_eq!(pool.used_tokens(), 60);
        // A second publish that would overcommit is refused with no state
        // change — even though the first transfer is still in flight.
        assert_eq!(pool.try_publish(2, 50, t(0), 0, t(10)), None);
        assert_eq!(pool.refusals(), 1);
        assert_eq!(pool.used_tokens(), 60);
        assert_eq!(pool.len(), 1);
        // A fitting one is accepted and serialized behind the first.
        let done2 = pool.try_publish(3, 40, t(0), 0, t(10)).expect("fits");
        assert_eq!(done2, t(20), "same link serializes transfers");
        assert_eq!(pool.peak_tokens(), 100);
    }

    #[test]
    fn links_serialize_independently() {
        let mut pool = SharedKvPool::new(1000, 2);
        let a = pool.try_publish(1, 10, t(5), 0, t(10)).expect("fits");
        let b = pool.try_publish(2, 10, t(5), 1, t(10)).expect("fits");
        assert_eq!(a, t(15));
        assert_eq!(b, t(15), "distinct links do not contend");
        let c = pool.try_publish(3, 10, t(0), 0, t(10)).expect("fits");
        assert_eq!(c, t(25), "link 0 backs up behind its first transfer");
    }

    #[test]
    fn claim_releases_and_charges_occupancy() {
        let mut pool = SharedKvPool::new(100, 1);
        pool.try_publish(7, 40, t(0), 0, t(10)).expect("fits");
        let entry = pool.claim(7, t(35));
        assert_eq!(entry.tokens, 40);
        assert_eq!(entry.visible, t(10));
        assert_eq!(pool.used_tokens(), 0);
        assert!(pool.is_empty());
        // 40 tokens over 25 µs.
        let expect = 40.0 * 25e-6;
        assert!((pool.occupancy_token_seconds() - expect).abs() < 1e-12);
        // Freed capacity is reusable.
        assert!(pool.try_publish(8, 100, t(40), 0, t(10)).is_some());
        assert_eq!(pool.peak_tokens(), 100);
    }

    #[test]
    fn parked_copies_never_refuse_publishes_and_evict_oldest_first() {
        let mut pool = SharedKvPool::new(100, 1);
        pool.try_publish(1, 60, t(0), 0, t(10)).expect("fits");
        pool.claim(1, t(20));
        pool.park(1, 60, t(20));
        pool.try_publish(2, 30, t(20), 0, t(10)).expect("fits");
        pool.claim(2, t(40));
        pool.park(2, 30, t(40));
        assert_eq!(pool.parked_tokens(), 90);
        // 90 parked + 40 live would overflow the 100-token physical pool;
        // the publish is accepted (parked copies reserve nothing) and the
        // oldest copy is evicted to make the room.
        pool.try_publish(3, 40, t(50), 0, t(10)).expect("parked copies cannot refuse a publish");
        assert_eq!(pool.evictions(), 1);
        assert_eq!(pool.rescue(1), None, "evicted copy is gone");
        assert_eq!(pool.rescue(2), Some(30), "younger copy survived");
        assert_eq!(pool.parked_tokens(), 0);
        // Parked copies never move the reservation-side statistics.
        assert_eq!(pool.peak_tokens(), 60);
        assert_eq!(pool.refusals(), 0);
    }

    #[test]
    fn rescue_and_discard_are_exactly_once() {
        let mut pool = SharedKvPool::new(100, 1);
        pool.try_publish(9, 25, t(0), 0, t(5)).expect("fits");
        pool.claim(9, t(10));
        pool.park(9, 25, t(10));
        assert_eq!(pool.parked_len(), 1);
        assert_eq!(pool.rescue(9), Some(25));
        assert_eq!(pool.rescue(9), None, "a rescued copy cannot be rescued again");
        assert!(!pool.discard_parked(9));
        pool.park(9, 25, t(30));
        assert!(pool.discard_parked(9), "completing the context releases its copy");
        assert_eq!(pool.parked_tokens(), 0);
    }

    #[test]
    #[should_panic(expected = "parked twice")]
    fn double_park_panics() {
        let mut pool = SharedKvPool::new(100, 1);
        pool.park(4, 10, t(0));
        pool.park(4, 10, t(1));
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let mut pool = SharedKvPool::new(100, 1);
        let _ = pool.try_publish(1, 10, t(0), 0, t(1));
        let _ = pool.try_publish(1, 10, t(0), 0, t(1));
    }

    #[test]
    #[should_panic(expected = "claimed entry is resident")]
    fn claiming_absent_entry_panics() {
        let mut pool = SharedKvPool::new(100, 1);
        pool.claim(1, t(0));
    }
}
