//! Differential goldens for the HashMap → BTreeMap conversion.
//!
//! The constants below were captured on the pre-conversion tree (unordered
//! `HashMap` state in `CxlFabric::{links,stats}`, `CentSystem::devices`,
//! `PimChannel::{rows,luts}` and the compiler's `ImageBuilder::beats`) and
//! asserted against the deterministic `BTreeMap` replacements: identical
//! simulation output before and after, plus identical output across repeated
//! runs in one process — the property the `cent-lint` D1 rule
//! (`no-hash-collections`) now enforces statically.

use cent::compiler::{weight_image, BlockPlacement, Strategy};
use cent::core_api::CentSystem;
use cent::cxl::{CxlFabric, FabricConfig, NodeId};
use cent::model::{BlockWeights, ModelConfig};
use cent::types::{ByteSize, ChannelId, DeviceId, Time};

fn fnv(h: &mut u64, v: u64) {
    *h = (*h ^ v).wrapping_mul(0x100000001b3);
}

fn image_fingerprint() -> (usize, u64) {
    let cfg = ModelConfig::tiny();
    let p = BlockPlacement::plan(&cfg, vec![ChannelId(0)]).unwrap();
    let w = BlockWeights::random(&cfg, 42);
    let image = weight_image(&p, &w);
    let mut h: u64 = 0xcbf29ce484222325;
    for wr in &image {
        fnv(&mut h, wr.channel.0 as u64);
        fnv(&mut h, wr.bank.0 as u64);
        fnv(&mut h, wr.row.0 as u64);
        fnv(&mut h, wr.col.0 as u64);
        for lane in wr.beat.iter() {
            fnv(&mut h, lane.to_bits() as u64);
        }
    }
    (image.len(), h)
}

#[test]
fn weight_image_matches_pre_btreemap_golden() {
    // Captured with ImageBuilder::beats as a HashMap (plus its sort): the
    // BTreeMap emits the same writes in the same order with no sort at all.
    assert_eq!(image_fingerprint(), (2432, 0x74c27ab3b3dd4300));
    // And repeated construction is bit-stable within the process.
    assert_eq!(image_fingerprint(), image_fingerprint());
}

#[test]
fn functional_decode_matches_pre_btreemap_golden() {
    let cfg = ModelConfig::tiny();
    let mut sys = CentSystem::functional(&cfg, 2, Strategy::PipelineParallel).unwrap();
    sys.load_random_weights(7).unwrap();
    let x = vec![0.01_f32; cfg.hidden];
    let out = sys.decode_token(&x, 0).unwrap();
    let mut h: u64 = 0xcbf29ce484222325;
    for v in &out {
        fnv(&mut h, v.to_bits() as u64);
    }
    // Output embedding, elapsed time and the per-substrate breakdown all
    // captured on the HashMap-keyed device map.
    assert_eq!(h, 0x3e15c796908e0825);
    assert_eq!(sys.elapsed().as_ps(), 4_546_500);
    let b = sys.breakdown();
    assert_eq!(
        (b.pim.as_ps(), b.pnm.as_ps(), b.cxl.as_ps(), b.host.as_ps()),
        (4_865_000, 3_502_000, 0, 0)
    );
}

#[test]
fn fabric_collectives_match_pre_btreemap_golden() {
    let mut f = CxlFabric::new(FabricConfig::cent(32));
    let targets: Vec<DeviceId> = (1..32).map(DeviceId).collect();
    let bc =
        f.broadcast(NodeId::Device(DeviceId(0)), &targets, ByteSize::kib(16), Time::ZERO).unwrap();
    let ga =
        f.gather(NodeId::Device(DeviceId(0)), &targets, ByteSize::kib(4), bc.completed_at).unwrap();
    assert_eq!((bc.delivered_at.as_ps(), bc.completed_at.as_ps()), (1_330_000, 2_532_000));
    assert_eq!((ga.delivered_at.as_ps(), ga.completed_at.as_ps()), (11_670_000, 11_912_000));
    let s = f.stats(NodeId::Device(DeviceId(0)));
    assert_eq!((s.tx_bytes, s.rx_bytes), (24_320, 134_912));
}
