//! Keeps `docs/SCHEMAS.md` honest: every worked example committed in the
//! schema book is parsed and compared — value for value — against a fresh
//! run of the same configurations.
//!
//! The configurations live in `examples/schema_dump.rs`, which this test
//! includes as a module, so the helper that regenerates the docs and the
//! test that checks them can never drift apart. The comparison is exact
//! (the simulator is deterministic down to its f64-derived statistics);
//! the committed blocks are pretty-printed, so both sides go through the
//! minimal JSON parser below and the parsed values are compared.

#[path = "../examples/schema_dump.rs"]
mod schema_dump;

/// A parsed JSON value. Object keys keep document order: the serialisers
/// emit a fixed order and the committed examples preserve it, so order is
/// part of the schema under test.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Recursive-descent parser for the JSON subset the workspace emits (no
/// escape sequences beyond `\"` and `\\` appear in any report).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value();
        p.skip_ws();
        assert!(p.pos == p.bytes.len(), "trailing garbage at byte {}", p.pos);
        value
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert!(
            self.bytes.get(self.pos) == Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("unexpected end of document")
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(text.as_bytes()),
            "expected {text} at byte {}",
            self.pos
        );
        self.pos += text.len();
        value
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected ',' or '}}', found {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected ',' or ']', found {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.bytes[self.pos] as char);
                    self.pos += 1;
                }
                b => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text:?} at byte {start}")))
    }
}

/// Extracts the fenced JSON block tagged `<!-- schema: {name} -->` from
/// the committed docs.
fn committed_example(docs: &str, name: &str) -> Json {
    let marker = format!("<!-- schema: {name} -->");
    let at = docs.find(&marker).unwrap_or_else(|| panic!("docs/SCHEMAS.md lost marker {marker}"));
    let fence_open = docs[at..].find("```json").expect("marker not followed by a json fence") + at;
    let body_start = docs[fence_open..].find('\n').unwrap() + fence_open + 1;
    let fence_close = docs[body_start..].find("```").expect("unterminated json fence") + body_start;
    Parser::parse(&docs[body_start..fence_close])
}

/// Renders the path-to-mismatch so a drifted doc fails with the exact
/// field, not a page-long debug dump.
fn assert_same(path: &str, committed: &Json, live: &Json) {
    match (committed, live) {
        (Json::Obj(a), Json::Obj(b)) => {
            let a_keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            let b_keys: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(a_keys, b_keys, "object keys drifted at {path}");
            for ((k, va), (_, vb)) in a.iter().zip(b) {
                assert_same(&format!("{path}.{k}"), va, vb);
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            assert_eq!(a.len(), b.len(), "array length drifted at {path}");
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                assert_same(&format!("{path}[{i}]"), va, vb);
            }
        }
        _ => assert_eq!(
            committed, live,
            "value drifted at {path} — regenerate with `cargo run --release --example \
             schema_dump` and update docs/SCHEMAS.md"
        ),
    }
}

#[test]
fn committed_schema_examples_match_the_live_serialisers() {
    let docs = include_str!("../docs/SCHEMAS.md");
    let live: std::collections::BTreeMap<&str, Json> =
        schema_dump::dumps().into_iter().map(|(name, json)| (name, Parser::parse(&json))).collect();

    assert_same(
        "serving_report",
        &committed_example(docs, "serving-report"),
        &live["serving_report"],
    );
    assert_same("fleet_report", &committed_example(docs, "fleet-report"), &live["fleet_report"]);

    // The optional sections are committed as their subobjects; the
    // enclosing report is the fleet schema already checked above.
    let degraded = live["fleet_report_degraded"]
        .get("degraded")
        .expect("faulted run must carry a degraded section");
    assert_same("degraded", &committed_example(docs, "degraded-section"), degraded);
    let disagg =
        live["fleet_report_disagg"].get("disagg").expect("split run must carry a disagg section");
    assert_same("disagg", &committed_example(docs, "disagg-section"), disagg);
    // The degraded section of a *faulted split* run additionally carries
    // live pool-rescue rows; the committed example pins them too.
    let disagg_degraded = live["fleet_report_disagg_faulted"]
        .get("degraded")
        .expect("faulted split run must carry a degraded section");
    assert_same(
        "disagg_degraded",
        &committed_example(docs, "disagg-degraded-section"),
        disagg_degraded,
    );

    // And the absences that keep old reports comparable: no fault
    // schedule → no degraded key; colocated → no disagg key.
    for (name, key) in [("fleet_report", "degraded"), ("fleet_report", "disagg")] {
        assert!(
            live[name].get(key).is_none(),
            "{name} must omit {key:?}, not serialise it as null"
        );
    }
}
