//! Property-style tests for the serving simulator's refactor invariants.
//!
//! The build environment has no external crates, so instead of `proptest`
//! these run each property over seeded workloads drawn from the in-tree
//! deterministic PRNG — same invariants, fixed seeds, reproducible
//! failures. The properties guard the KV, tick-engine and swap-tier
//! refactors:
//!
//! 1. the KV budget is never exceeded at any event (the scheduler asserts
//!    it internally on every mutation; the runs here would panic);
//! 2. every admitted request — including evicted-then-resumed ones, whether
//!    recomputed or swapped — completes exactly once;
//! 3. full-reservation mode reproduces a closed-form reference
//!    bit-for-bit on the same seed;
//! 4. all three event engines — the phase-bucketed tick engine, the
//!    retained straight-line per-token loop and the span-fast-forward
//!    engine — produce bit-identical reports across seeds × KV modes ×
//!    scheduling policies × spill modes × class mixes;
//! 5. the CXL host pool never exceeds its capacity, device+host accounting
//!    conserves each resident's footprint, `RecomputeOnly` reproduces the
//!    pre-swap reports bit-for-bit, and `CostDriven` dominates the worse
//!    pure mode on the saturated chatbot mix;
//! 6. the span engine pays strictly fewer heap events per generated token
//!    than the bucketed engine on the saturated chatbot mix, and repeated
//!    runs are deterministic down to the event-core counters.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cent_cost::KvSwapCost;
use cent_model::ModelConfig;
use cent_serving::{
    ArrivalProcess, ClassMix, DeadlineAware, KvBudget, KvMode, KvSpillConfig, KvSpillMode,
    LatencyStats, LengthSampler, RequestRecord, RequestSpec, SchedulerConfig, ServeOptions,
    ServingSystem, ShortestRemainingDecode, TickEngine, Workload,
};
use cent_types::{ByteSize, Time, TimeHistogram};

/// Serving constants mirroring `ServingSystem::from_parts` inputs.
#[derive(Clone, Copy)]
struct Constants {
    replicas: usize,
    slots: usize,
    budget: u64,
    token_interval: Time,
    prefill_rate: f64,
    steady: f64,
}

const CONSTANTS: Constants = Constants {
    replicas: 2,
    slots: 3,
    budget: 400,
    token_interval: Time(1_000_000_000), // 1 ms in ps
    prefill_rate: 2000.0,
    steady: 6000.0,
};

fn system(c: Constants, kv: KvMode) -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: c.replicas,
            slots_per_replica: c.slots,
            kv_budget: KvBudget::tokens(c.budget),
            kv,
        },
        c.token_interval,
        c.prefill_rate,
        c.steady,
    )
}

fn workload(seed: u64, rate: f64) -> Workload {
    Workload {
        arrivals: ArrivalProcess::Poisson { rate_qps: rate },
        lengths: LengthSampler::Uniform {
            prompt_min: 5,
            prompt_max: 60,
            decode_min: 2,
            decode_max: 90,
        },
        seed,
        classes: ClassMix::default(),
    }
}

/// A fast-swap cost model: 4 KiB/token over the paper's host link, cheap
/// against the test rigs' 2000 tok/s prefill so SwapOnly and CostDriven
/// actually exercise the swap path.
fn cheap_swap() -> KvSwapCost {
    KvSwapCost::cent(ByteSize::kib(4))
}

/// The serving loop reimplemented in closed form: full reservation, FIFO
/// head-of-line admission, per-request `Finish` events, per-replica serial
/// prefill, and one deterministic service timeline per admission. The
/// timeline matches the event engines' block-step model: the first token
/// emerges at the first step-grid boundary after prefill completes, and
/// every later token one `token_interval` apart.
struct Reference {
    records: Vec<RequestRecord>,
    rejected: usize,
    peak_kv: u64,
    peak_queue_depth: usize,
    busy_slot_ps: u128,
    kv_reserved_ps: u128,
    last_t: Time,
}

fn reference_full_reservation(c: Constants, trace: &[RequestSpec]) -> Reference {
    #[derive(Clone, Copy)]
    enum Ev {
        Arrive(RequestSpec),
        Finish(RequestRecord),
    }
    struct Entry {
        at: Time,
        seq: u64,
        ev: Ev,
    }
    impl PartialEq for Entry {
        fn eq(&self, o: &Self) -> bool {
            (self.at, self.seq) == (o.at, o.seq)
        }
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(o.at, o.seq))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    let mut events: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
    for (i, spec) in trace.iter().enumerate() {
        events.push(Reverse(Entry { at: spec.arrival, seq: i as u64, ev: Ev::Arrive(*spec) }));
    }
    let mut seq = trace.len() as u64;

    let mut queue: Vec<RequestSpec> = Vec::new();
    let mut busy = vec![0usize; c.replicas];
    let mut kv = vec![0u64; c.replicas];
    let mut prefill_free = vec![Time::ZERO; c.replicas];
    let mut r = Reference {
        records: Vec::new(),
        rejected: 0,
        peak_kv: 0,
        peak_queue_depth: 0,
        busy_slot_ps: 0,
        kv_reserved_ps: 0,
        last_t: Time::ZERO,
    };

    while let Some(&Reverse(Entry { at: t, .. })) = events.peek() {
        let dt = u128::from(t.saturating_sub(r.last_t).as_ps());
        r.busy_slot_ps += busy.iter().sum::<usize>() as u128 * dt;
        r.kv_reserved_ps += u128::from(kv.iter().sum::<u64>()) * dt;
        r.last_t = t;
        while matches!(events.peek(), Some(Reverse(e)) if e.at == t) {
            let Reverse(entry) = events.pop().expect("peeked");
            match entry.ev {
                Ev::Arrive(spec) => {
                    if spec.kv_tokens() > c.budget {
                        r.rejected += 1;
                    } else {
                        queue.push(spec);
                        r.peak_queue_depth = r.peak_queue_depth.max(queue.len());
                    }
                }
                Ev::Finish(rec) => {
                    busy[rec.replica] -= 1;
                    kv[rec.replica] -= rec.spec.kv_tokens();
                    r.records.push(rec);
                }
            }
        }
        // FIFO head-of-line admission with (busy, kv, index) tie-breaking.
        while let Some(head) = queue.first().copied() {
            let need = head.kv_tokens();
            let slot = (0..c.replicas)
                .filter(|&i| busy[i] < c.slots && kv[i] + need <= c.budget)
                .min_by_key(|&i| (busy[i], kv[i], i));
            let Some(idx) = slot else { break };
            queue.remove(0);
            busy[idx] += 1;
            kv[idx] += need;
            r.peak_kv = r.peak_kv.max(kv[idx]);
            // Closed-form service timeline.
            let prefill = Time::from_secs_f64(head.prompt as f64 / c.prefill_rate);
            let start = t.max(prefill_free[idx]);
            let prefill_done = start + prefill;
            prefill_free[idx] = prefill_done;
            // First token at the end of the block step in progress when
            // prefill completes (the step grid is anchored at time zero).
            let step = c.token_interval.as_ps();
            let first_token = Time::from_ps((prefill_done.as_ps() / step + 1) * step);
            let rest = (head.decode as u64).saturating_sub(1);
            let finished = first_token + Time::from_ps(c.token_interval.as_ps() * rest);
            events.push(Reverse(Entry {
                at: finished,
                seq,
                ev: Ev::Finish(RequestRecord {
                    spec: head,
                    admitted: t,
                    first_token,
                    finished,
                    replica: idx,
                    preemptions: 0,
                }),
            }));
            seq += 1;
        }
    }
    r.records.sort_by_key(|rec| rec.spec.id);
    r
}

#[test]
fn full_reservation_matches_closed_form_reference_bit_for_bit() {
    let c = CONSTANTS;
    let sys = system(c, KvMode::FullReservation);
    for seed in [1u64, 7, 42, 0xCE27, 9001] {
        let w = workload(seed, 12.0);
        let trace = w.generate(Time::from_secs_f64(10.0), 4096);
        // Default (phase-bucketed) engine vs the closed form; the per-token
        // loop is held to the same closed form via the engine-equivalence
        // matrix below.
        let report = sys.serve_trace(&trace, 12.0);
        let reference = reference_full_reservation(c, &trace);

        assert_eq!(report.completed, reference.records.len(), "seed {seed}");
        assert_eq!(report.rejected, reference.rejected, "seed {seed}");
        assert_eq!(report.preemptions, 0, "seed {seed}");
        assert_eq!(report.peak_queue_depth, reference.peak_queue_depth, "seed {seed}");

        // Latency populations, bit for bit.
        let ttfts: Vec<Time> = reference.records.iter().map(|r| r.ttft()).collect();
        let lats: Vec<Time> = reference.records.iter().map(|r| r.query_latency()).collect();
        let waits: Vec<Time> = reference.records.iter().map(|r| r.queue_wait()).collect();
        assert_eq!(report.ttft, LatencyStats::from_samples(&ttfts), "seed {seed}");
        assert_eq!(report.query_latency, LatencyStats::from_samples(&lats), "seed {seed}");
        assert_eq!(report.queue_wait, LatencyStats::from_samples(&waits), "seed {seed}");

        // TBT: constant cadence, weighted one sample per generated token
        // after the first.
        let mut tbt = TimeHistogram::new();
        for rec in &reference.records {
            tbt.record_n(c.token_interval, rec.spec.decode.saturating_sub(1) as u64);
        }
        assert_eq!(report.tbt, LatencyStats::from_histogram(&tbt), "seed {seed}");

        // Throughput and occupancy, bit for bit (integer integrals make
        // these independent of event granularity).
        let first = reference.records.iter().map(|r| r.spec.arrival).min().unwrap();
        let last = reference.records.iter().map(|r| r.finished).max().unwrap();
        let makespan = last.saturating_sub(first);
        assert_eq!(report.makespan, makespan, "seed {seed}");
        let decode_tokens: u64 = reference.records.iter().map(|r| r.spec.decode as u64).sum();
        let expect_tps = decode_tokens as f64 / makespan.as_secs();
        assert_eq!(report.tokens_per_s.to_bits(), expect_tps.to_bits(), "seed {seed}");
        let total_slot_ps = (c.replicas * c.slots) as u128 * u128::from(reference.last_t.as_ps());
        let expect_util = reference.busy_slot_ps as f64 / total_slot_ps as f64;
        assert_eq!(report.slot_utilization.to_bits(), expect_util.to_bits(), "seed {seed}");
        let expect_peak = reference.peak_kv as f64 / c.budget as f64;
        assert_eq!(report.peak_kv_fraction.to_bits(), expect_peak.to_bits(), "seed {seed}");
        let total_kv_ps =
            u128::from(c.budget) * c.replicas as u128 * u128::from(reference.last_t.as_ps());
        let expect_kv_util = reference.kv_reserved_ps as f64 / total_kv_ps as f64;
        assert_eq!(report.kv_utilization.to_bits(), expect_kv_util.to_bits(), "seed {seed}");
    }
}

/// The differential property behind the tick-engine refactors: the
/// phase-bucketed engine, the retained straight-line per-token loop and
/// the span-fast-forward engine must all produce **bit-identical**
/// `ServingReport`s on the same trace, for every KV mode and scheduling
/// policy, including preemption-heavy operating points (the 160/170-token
/// budgets force constant eviction and recompute under token-granular
/// accounting).
#[test]
fn engines_match_bit_for_bit_across_kv_modes_and_policies() {
    let slo = Time::from_secs_f64(0.5);
    type MakeOptions = fn(Time) -> ServeOptions;
    let policies: [(&str, MakeOptions); 3] = [
        ("fifo", |_| ServeOptions::default()),
        ("srd", |_| ServeOptions::default().with_policy(Box::new(ShortestRemainingDecode))),
        ("deadline", |slo| {
            ServeOptions::default().with_policy(Box::new(DeadlineAware { slo })).with_slo(slo)
        }),
    ];
    let mut preemptions_seen = 0u64;
    for seed in [1u64, 21, 0xCE27] {
        for (budget, rate) in [(160u64, 30.0), (170, 40.0), (CONSTANTS.budget, 12.0)] {
            let c = Constants { budget, ..CONSTANTS };
            let sys = system(c, KvMode::FullReservation);
            let w = workload(seed, rate);
            let trace = w.generate(Time::from_secs_f64(6.0), 4096);
            for kv in [KvMode::FullReservation, KvMode::token_granular()] {
                for (name, make) in policies {
                    let options = ServeOptions { kv, ..make(slo) };
                    let bucketed = sys.serve_trace_with(
                        &trace,
                        rate,
                        options.clone().with_engine(TickEngine::PhaseBucketed),
                    );
                    for engine in [TickEngine::PerTokenReference, TickEngine::SpanFastForward] {
                        let other =
                            sys.serve_trace_with(&trace, rate, options.clone().with_engine(engine));
                        assert_eq!(
                            bucketed, other,
                            "{engine:?} diverged: seed {seed}, budget {budget}, {kv:?}, {name}"
                        );
                    }
                    assert_eq!(bucketed.completed, bucketed.submitted - bucketed.rejected);
                    preemptions_seen += bucketed.preemptions;
                }
            }
        }
    }
    // The matrix must actually exercise the preemption machinery.
    assert!(preemptions_seen > 0, "expected KV pressure under the tight budgets");
}

/// The tentpole differential: across seeds × spill modes × class mixes
/// (with preemption-tight budgets), all three engines stay bit-identical —
/// including swap counters, stall totals, host-pool stats and the
/// per-class breakdowns.
#[test]
fn engines_agree_bit_for_bit_across_spill_modes_and_classes() {
    let mixes: [ClassMix; 2] = [ClassMix::default(), ClassMix::two_tier(0.5)];
    let mut swaps_seen = 0u64;
    let mut recomputes_seen = 0u64;
    for seed in [1u64, 21, 0xCE27] {
        for (budget, rate) in [(160u64, 30.0), (170, 40.0)] {
            let c = Constants { budget, ..CONSTANTS };
            let sys = system(c, KvMode::FullReservation);
            for mix in &mixes {
                let w = workload(seed, rate).with_classes(mix.clone());
                let trace = w.generate(Time::from_secs_f64(6.0), 4096);
                for mode in KvSpillMode::ALL {
                    let spill =
                        KvSpillConfig { mode, host_pool_tokens: 1500, swap_cost: cheap_swap() };
                    let options = ServeOptions::token_granular().with_spill(spill);
                    let bucketed = sys.serve_trace_with(
                        &trace,
                        rate,
                        options.clone().with_engine(TickEngine::PhaseBucketed),
                    );
                    for engine in [TickEngine::PerTokenReference, TickEngine::SpanFastForward] {
                        let other =
                            sys.serve_trace_with(&trace, rate, options.clone().with_engine(engine));
                        assert_eq!(
                            bucketed, other,
                            "{engine:?} diverged: seed {seed}, budget {budget}, {mode:?}, {mix:?}"
                        );
                    }
                    assert_eq!(bucketed.completed, bucketed.submitted - bucketed.rejected);
                    assert!(bucketed.host_kv_peak_tokens <= 1500, "host pool overcommitted");
                    if mode == KvSpillMode::RecomputeOnly {
                        assert_eq!(bucketed.swaps, 0);
                    }
                    swaps_seen += bucketed.swaps;
                    recomputes_seen += bucketed.preemptions;
                }
            }
        }
    }
    // The matrix must actually exercise both victim dispositions.
    assert!(swaps_seen > 0, "expected the swap path under tight budgets");
    assert!(recomputes_seen > 0, "expected the recompute path too");
}

/// Host-pool capacity is a hard bound, and the device+host split conserves
/// each resident's footprint: when a run drains, the pool is empty, every
/// swapped request completed exactly once, and a pool too small for any
/// victim degrades to pure recompute.
#[test]
fn host_pool_bounded_and_swapped_requests_complete_exactly_once() {
    for (seed, pool, rate) in [(3u64, 700u64, 30.0), (11, 150, 40.0), (5, 60, 45.0)] {
        let sys = system(Constants { budget: 170, ..CONSTANTS }, KvMode::FullReservation);
        let w = workload(seed, rate);
        let trace = w.generate(Time::from_secs_f64(6.0), 4096);
        let spill = KvSpillConfig::swap_only(pool, cheap_swap());
        let report =
            sys.serve_trace_with(&trace, rate, ServeOptions::token_granular().with_spill(spill));
        // (1) pool bound held at every instant (the event loop asserts the
        // running occupancy; the peak is reported here).
        assert!(report.host_kv_peak_tokens <= pool, "seed {seed}: pool bound violated");
        assert!(report.host_kv_utilization <= 1.0);
        // (2) conservation: the run drained, so all swapped pages came back
        // (the loop asserts host_used == 0 at drain) and every admitted
        // request — swapped, recomputed or untouched — completed once.
        assert_eq!(report.completed, report.submitted - report.rejected, "seed {seed}");
        let expect_decode: u64 =
            trace.iter().filter(|s| s.kv_tokens() <= 170).map(|s| s.decode as u64).sum();
        assert_eq!(report.decode_tokens, expect_decode, "seed {seed}");
        // (3) evictions split exactly between the two dispositions.
        if pool >= 170 {
            assert!(report.swaps > 0, "seed {seed}: roomy pool must swap");
        }
        if pool < 7 {
            assert_eq!(report.swaps, 0, "seed {seed}: nothing fits a {pool}-token pool");
        }
    }
}

/// The new spill plumbing leaves the legacy path untouched: RecomputeOnly
/// (the default) reproduces the pre-swap behaviour bit-for-bit, regardless
/// of the (never-consulted) pool capacity and cost model, on both engines.
#[test]
fn recompute_only_reproduces_legacy_reports_bit_for_bit() {
    let sys = system(Constants { budget: 170, ..CONSTANTS }, KvMode::FullReservation);
    let w = workload(21, 40.0);
    let trace = w.generate(Time::from_secs_f64(6.0), 4096);
    for engine in TickEngine::ALL {
        let legacy =
            sys.serve_trace_with(&trace, 40.0, ServeOptions::token_granular().with_engine(engine));
        assert!(legacy.preemptions > 0, "operating point must churn");
        assert_eq!(legacy.swaps, 0);
        // Same mode with a huge pool and an extreme cost model: identical
        // behaviour (config echo fields aside).
        let spill = KvSpillConfig {
            mode: KvSpillMode::RecomputeOnly,
            host_pool_tokens: 0,
            swap_cost: KvSwapCost::cent(ByteSize::gib(64)),
        };
        let explicit = sys.serve_trace_with(
            &trace,
            40.0,
            ServeOptions::token_granular().with_spill(spill).with_engine(engine),
        );
        assert_eq!(legacy, explicit, "{engine:?}");
    }
}

/// The acceptance criterion on the saturated chatbot mix: the cost-driven
/// mode picks the cheaper disposition per victim, so it must dominate the
/// *worse* of the two pure modes — at least its goodput, at most its
/// eviction (preemption + swap) stall time.
#[test]
fn cost_driven_dominates_the_worse_pure_mode_on_chatbot() {
    let c = Constants {
        replicas: 1,
        slots: 6,
        budget: 2 * 4096 + 1024,
        token_interval: Time(1_000_000_000),
        prefill_rate: 50_000.0,
        steady: 6000.0,
    };
    let sys = system(c, KvMode::FullReservation);
    let slo = Time::from_secs_f64(2.0 * 3584.0 * 1e-3);
    let w = Workload::chatbot(2.0, 0xCE27);
    let trace = w.generate(Time::from_secs_f64(400.0), 4096);
    let pool = 4 * 4096;
    // Realistic footprint: Llama2-7B KV across all 32 blocks is 256 KiB per
    // token; against a 50k tok/s prefill the comparator is genuinely
    // contested (short contexts recompute, long ones swap).
    let cost = KvSwapCost::cent(ByteSize::kib(256));
    let run = |mode: KvSpillMode| {
        let spill = KvSpillConfig { mode, host_pool_tokens: pool, swap_cost: cost };
        sys.serve_trace_with(
            &trace,
            2.0,
            ServeOptions::token_granular().with_spill(spill).with_slo(slo),
        )
    };
    let recompute = run(KvSpillMode::RecomputeOnly);
    let swap = run(KvSpillMode::SwapOnly);
    let cost_driven = run(KvSpillMode::CostDriven);
    assert!(
        recompute.preemptions > 0 && swap.swaps > 0,
        "operating point must evict under both pure modes \
         ({} recomputes, {} swaps)",
        recompute.preemptions,
        swap.swaps
    );
    let worse_goodput = recompute.goodput_qps.min(swap.goodput_qps);
    let worse_stall = recompute.eviction_stall().max(swap.eviction_stall());
    assert!(
        cost_driven.goodput_qps >= worse_goodput,
        "cost-driven goodput {} < worse pure mode {}",
        cost_driven.goodput_qps,
        worse_goodput
    );
    assert!(
        cost_driven.eviction_stall() <= worse_stall,
        "cost-driven stall {} > worse pure mode {}",
        cost_driven.eviction_stall(),
        worse_stall
    );
}

/// The span engine's perf property on the acceptance shape: on the
/// saturated 512/3584 chatbot mix it must pay strictly fewer heap events
/// per generated token than the bucketed engine — under both KV modes,
/// with and without preemption churn — while reporting bit-identically,
/// and repeated runs must be deterministic down to the event-core
/// counters.
#[test]
fn span_engine_beats_bucketed_heap_traffic_on_saturated_chatbot() {
    let c = Constants {
        replicas: 1,
        slots: 6,
        budget: 2 * 4096 + 1024,
        token_interval: Time(1_000_000_000),
        prefill_rate: 50_000.0,
        steady: 6000.0,
    };
    let sys = system(c, KvMode::FullReservation);
    let w = Workload::chatbot(2.0, 0xCE27);
    let trace = w.generate(Time::from_secs_f64(400.0), 4096);
    for options in [ServeOptions::default(), ServeOptions::token_granular()] {
        let (bkt_report, bkt) = sys.serve_trace_instrumented(
            &trace,
            2.0,
            options.clone().with_engine(TickEngine::PhaseBucketed),
        );
        let (span_report, span) = sys.serve_trace_instrumented(
            &trace,
            2.0,
            options.clone().with_engine(TickEngine::SpanFastForward),
        );
        assert_eq!(bkt_report, span_report);
        assert_eq!(span.tokens, bkt.tokens);
        assert!(span.tokens > 0);
        assert!(
            span.heap_events_per_token() < bkt.heap_events_per_token(),
            "span {:.4} must beat bucketed {:.4} heap events/token",
            span.heap_events_per_token(),
            bkt.heap_events_per_token()
        );
        // Determinism: a repeated run reproduces the report AND the
        // event-core counters exactly.
        let (again_report, again) = sys.serve_trace_instrumented(
            &trace,
            2.0,
            options.clone().with_engine(TickEngine::SpanFastForward),
        );
        assert_eq!(span_report, again_report);
        assert_eq!(span, again);
    }
}

#[test]
fn token_granular_budget_held_and_everything_completes() {
    // Tight budgets force constant preemption; the scheduler asserts
    // `kv_reserved <= budget` on every mutation, so merely completing these
    // runs exercises invariant (1). Invariant (2): every non-rejected
    // arrival completes exactly once, even through recompute.
    for (seed, budget, rate) in
        [(3u64, 160u64, 30.0), (11, 200, 45.0), (5, 400, 60.0), (77, 151, 25.0)]
    {
        let sys = system(Constants { budget, ..CONSTANTS }, KvMode::FullReservation);
        let w = workload(seed, rate);
        let trace = w.generate(Time::from_secs_f64(6.0), 4096);
        let oversized = trace.iter().filter(|s| s.kv_tokens() > budget).count();
        let report = sys.serve_trace_with(&trace, rate, ServeOptions::token_granular());
        assert_eq!(report.submitted, trace.len(), "seed {seed}");
        assert_eq!(report.rejected, oversized, "seed {seed}");
        assert_eq!(
            report.completed,
            report.submitted - report.rejected,
            "seed {seed}: every admitted request must complete exactly once"
        );
        let expect_decode: u64 =
            trace.iter().filter(|s| s.kv_tokens() <= budget).map(|s| s.decode as u64).sum();
        assert_eq!(report.decode_tokens, expect_decode, "seed {seed}");
        assert!(report.peak_kv_fraction <= 1.0, "seed {seed}");
        assert!(report.kv_utilization <= 1.0, "seed {seed}");
    }
}

#[test]
fn reports_are_deterministic_across_runs_and_policies() {
    // Same seed → identical ServingReport, through preemption and for every
    // policy (event order is total, victims are chosen deterministically).
    let sys = system(Constants { budget: 170, ..CONSTANTS }, KvMode::FullReservation);
    let w = workload(21, 40.0);
    let horizon = Time::from_secs_f64(6.0);
    let make = |policy: u8| {
        let options = match policy {
            0 => ServeOptions::token_granular(),
            1 => ServeOptions::token_granular().with_policy(Box::new(ShortestRemainingDecode)),
            _ => ServeOptions::token_granular()
                .with_policy(Box::new(DeadlineAware { slo: Time::from_secs_f64(0.5) }))
                .with_slo(Time::from_secs_f64(0.5)),
        };
        sys.run_with(&w, horizon, options)
    };
    for policy in 0..3u8 {
        let a = make(policy);
        let b = make(policy);
        assert_eq!(a, b, "policy {policy} must be deterministic");
        assert_eq!(a.completed, a.submitted - a.rejected, "policy {policy}");
    }
    // The preemption machinery was actually exercised.
    assert!(make(0).preemptions > 0, "expected KV pressure under budget 170");
}

#[test]
fn token_granular_admits_more_on_the_chatbot_mix() {
    // The acceptance shape: 512/3584 chatbot queries against a KV pool
    // sized for ~2 full contexts but 6 slots. Full reservation caps
    // residency at 2; token-granular packs more because a query only
    // reaches its 4096-token footprint at its last generated token.
    let c = Constants {
        replicas: 1,
        slots: 6,
        budget: 2 * 4096 + 1024,
        token_interval: Time(1_000_000_000),
        prefill_rate: 50_000.0,
        steady: 6000.0,
    };
    let sys = system(c, KvMode::FullReservation);
    let w = Workload::chatbot(2.0, 0xCE27);
    let horizon = Time::from_secs_f64(400.0);
    let full = sys.run(&w, horizon);
    let token = sys.run_with(&w, horizon, ServeOptions::token_granular());
    assert!(
        token.slot_utilization > full.slot_utilization,
        "token {} vs full {}",
        token.slot_utilization,
        full.slot_utilization
    );
    assert!(
        token.tokens_per_s >= full.tokens_per_s,
        "token {} vs full {} tok/s",
        token.tokens_per_s,
        full.tokens_per_s
    );
    assert!(token.peak_kv_fraction <= 1.0);
    assert_eq!(token.completed, token.submitted - token.rejected);
}
