//! Property-based tests on core invariants (proptest).
use proptest::prelude::*;

use cent_dram::{DramCommand, PimChannelTiming};
use cent_isa::{decode as isa_decode, encode as isa_encode, Instruction, MacOperand};
use cent_types::{
    AccRegId, BankId, Bf16, ChannelId, ChannelMask, ColAddr, DeviceId, RowAddr, SbSlot,
};

proptest! {
    // BF16 conversion: every roundtrip through f32 is exact.
    #[test]
    fn bf16_bits_roundtrip(bits in any::<u16>()) {
        let v = Bf16::from_bits(bits);
        if !v.is_nan() {
            prop_assert_eq!(Bf16::from_f32(v.to_f32()).to_bits(), bits);
        }
    }

    // BF16 quantisation error is within half a ULP (2^-8 relative).
    #[test]
    fn bf16_error_bound(v in -1.0e30f32..1.0e30f32) {
        let q = Bf16::from_f32(v).to_f32();
        if q.is_finite() {
            prop_assert!((q - v).abs() <= v.abs() / 256.0 + f32::MIN_POSITIVE);
        }
    }

    // ISA: arbitrary instructions survive the 16-byte encoding.
    #[test]
    fn isa_roundtrip(
        chmask in any::<u32>(),
        opsize in 1u32..100_000,
        row in 0u32..16384,
        col in 0u32..64,
        reg in 0u8..32,
        gb in 0u8..64,
        nbk in any::<bool>(),
    ) {
        let operand = if nbk { MacOperand::NeighbourBank }
                      else { MacOperand::GlobalBuffer { slot: gb } };
        let inst = Instruction::MacAbk {
            chmask: ChannelMask(chmask),
            opsize,
            row: RowAddr(row),
            col: ColAddr(col),
            reg: AccRegId::new(reg),
            operand,
        };
        prop_assert_eq!(isa_decode(&isa_encode(&inst)).unwrap(), inst);
    }

    #[test]
    fn isa_data_movement_roundtrip(
        dv in 0u16..4096,
        rs in 0u16..2048,
        rd in 0u16..2048,
        opsize in 1u32..10_000,
        ch in 0u16..32,
        bank in 0u16..16,
    ) {
        for inst in [
            Instruction::SendCxl { dv: DeviceId(dv), rs: SbSlot(rs), rd: SbSlot(rd), opsize },
            Instruction::WrSbk {
                ch: ChannelId(ch), opsize, bank: BankId(bank),
                row: RowAddr(7), col: ColAddr(3), rs: SbSlot(rs),
            },
            Instruction::RdMac { chmask: ChannelMask(1 << ch), rd: SbSlot(rd), reg: AccRegId::new(0) },
        ] {
            prop_assert_eq!(isa_decode(&isa_encode(&inst)).unwrap(), inst);
        }
    }

    // DRAM timing: command issue times are monotonically non-decreasing and
    // MAC beats never violate tCCD_S.
    #[test]
    fn dram_issue_monotonic(rows in prop::collection::vec(0u32..64, 1..6)) {
        let mut ch = PimChannelTiming::new();
        let mut last = cent_types::Time::ZERO;
        for row in rows {
            let t = ch.issue(DramCommand::ActAb { row: RowAddr(row) }).unwrap();
            prop_assert!(t >= last);
            last = t;
            for col in 0..8 {
                let t = ch.issue(DramCommand::MacAb { col: ColAddr(col) }).unwrap();
                prop_assert!(t >= last);
                prop_assert!(t.saturating_sub(last) >= cent_types::Time::ZERO);
                last = t;
            }
            let t = ch.issue(DramCommand::PreAb).unwrap();
            prop_assert!(t >= last);
            last = t;
        }
    }

    // MAC beat spacing is at least tCCD_S = 1 ns.
    #[test]
    fn mac_beats_never_closer_than_tccds(n in 2usize..64) {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        let mut prev = None;
        for col in 0..n {
            let t = ch.issue(DramCommand::MacAb { col: ColAddr(col as u32) }).unwrap();
            if let Some(p) = prev {
                prop_assert!((t - p).as_ns() >= 1.0);
            }
            prev = Some(t);
        }
    }

    // GEMV layout: element placement is injective within a matrix.
    #[test]
    fn gemv_layout_no_aliasing(m in 1usize..96, n in 1usize..512, chans in 1u16..4) {
        use cent_compiler::GemvLayout;
        let channels: Vec<ChannelId> = (0..chans).map(ChannelId).collect();
        let layout = GemvLayout::plan(channels, RowAddr(0), m, n).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in (0..m).step_by(3) {
            for e in (0..n).step_by(7) {
                let loc = layout.element_location(r, e);
                prop_assert!(seen.insert(loc));
            }
        }
    }

    // Shared Buffer allocator: never double-books, errors past capacity.
    #[test]
    fn sb_allocator_is_disjoint(sizes in prop::collection::vec(1usize..128, 1..20)) {
        use cent_compiler::SbAllocator;
        let mut alloc = SbAllocator::new(0);
        let mut next_expected = 0usize;
        for s in sizes {
            match alloc.alloc(s) {
                Ok(slot) => {
                    prop_assert_eq!(slot.index(), next_expected);
                    next_expected += s;
                }
                Err(_) => prop_assert!(next_expected + s > 2048),
            }
        }
    }

    // CXL gather delivers exactly the multiset of sent payloads.
    #[test]
    fn cxl_gather_preserves_payloads(values in prop::collection::vec(-100.0f32..100.0, 1..8)) {
        use cent_cxl::{CommunicationEngine, FabricConfig};
        use cent_types::{Time, ZERO_BEAT};
        let mut comm = CommunicationEngine::new(FabricConfig::cent(16));
        let contributions: Vec<_> = values.iter().enumerate().map(|(i, v)| {
            let mut beat = ZERO_BEAT;
            beat[0] = Bf16::from_f32(*v);
            (DeviceId(i as u16 + 1), vec![beat])
        }).collect();
        let msgs = comm.gather(DeviceId(0), &contributions, Time::ZERO).unwrap();
        let mut got: Vec<f32> = msgs.iter().map(|m| m.beats[0][0].to_f32()).collect();
        let mut want: Vec<f32> = values.iter().map(|v| Bf16::from_f32(*v).to_f32()).collect();
        got.sort_by(f32::total_cmp);
        want.sort_by(f32::total_cmp);
        prop_assert_eq!(got, want);
    }
}

// RISC-V interpreter arithmetic matches host semantics.
proptest! {
    #[test]
    fn riscv_alu_matches_host(a in any::<i32>(), b in any::<i32>()) {
        use cent_riscv::{assemble, Cpu, Halt, Ram};
        let program = assemble(
            "add  t0, a0, a1
             sub  t1, a0, a1
             xor  t2, a0, a1
             mul  t3, a0, a1
             sltu t4, a0, a1
             ecall",
        ).unwrap();
        let mut ram = Ram::new(4096);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &program).unwrap();
        cpu.set_x(10, a as u32);
        cpu.set_x(11, b as u32);
        prop_assert_eq!(cpu.run(&mut ram, 100).unwrap(), Halt::Ecall);
        prop_assert_eq!(cpu.x(5), a.wrapping_add(b) as u32);
        prop_assert_eq!(cpu.x(6), a.wrapping_sub(b) as u32);
        prop_assert_eq!(cpu.x(7), (a ^ b) as u32);
        prop_assert_eq!(cpu.x(28), a.wrapping_mul(b) as u32);
        prop_assert_eq!(cpu.x(29), u32::from((a as u32) < (b as u32)));
    }

    #[test]
    fn riscv_div_rem_identity(a in any::<i32>(), b in any::<i32>()) {
        use cent_riscv::{assemble, Cpu, Halt, Ram};
        prop_assume!(b != 0);
        prop_assume!(!(a == i32::MIN && b == -1));
        let program = assemble("div t0, a0, a1\nrem t1, a0, a1\necall").unwrap();
        let mut ram = Ram::new(4096);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &program).unwrap();
        cpu.set_x(10, a as u32);
        cpu.set_x(11, b as u32);
        prop_assert_eq!(cpu.run(&mut ram, 100).unwrap(), Halt::Ecall);
        let q = cpu.x(5) as i32;
        let r = cpu.x(6) as i32;
        // RISC-V spec: a = q*b + r with |r| < |b| and sign(r) = sign(a).
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        prop_assert!(r == 0 || r.signum() == a.signum());
        prop_assert!(r.unsigned_abs() < b.unsigned_abs());
    }

    // Activation LUTs: monotone functions stay monotone through the table.
    #[test]
    fn af_lut_preserves_monotonicity(xs in prop::collection::vec(-8.0f32..8.0, 2..20)) {
        use cent_pim::{ActivationFunction, AfLut};
        let mut sorted = xs.clone();
        sorted.sort_by(f32::total_cmp);
        for f in [ActivationFunction::Sigmoid, ActivationFunction::Tanh, ActivationFunction::Exp] {
            let lut = AfLut::new(f);
            let ys: Vec<f32> = sorted.iter().map(|x| lut.eval(*x)).collect();
            for w in ys.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-4, "{f:?} not monotone: {w:?}");
            }
        }
    }

    // The PNM exponent pipeline tracks the reference within BF16 tolerance
    // across its whole input range.
    #[test]
    fn exp_taylor_tracks_reference(x in -80.0f32..10.0) {
        let got = cent_pnm::exp_taylor(x);
        let want = x.exp();
        let tol = (want * 0.02).abs().max(1e-30);
        prop_assert!((got - want).abs() <= tol, "exp({x}) = {got}, want {want}");
    }

    // DRAM earliest_issue is a fixed point: issuing at the returned time
    // must be legal (the scheduler never undershoots a constraint).
    #[test]
    fn dram_earliest_issue_is_legal(cols in prop::collection::vec(0u32..64, 1..32)) {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        for col in cols {
            let predicted = ch.earliest_issue(DramCommand::MacAb { col: ColAddr(col) }).unwrap();
            let actual = ch.issue(DramCommand::MacAb { col: ColAddr(col) }).unwrap();
            prop_assert_eq!(predicted, actual);
        }
    }
}
