//! Property-style tests on core invariants.
//!
//! The build environment has no external crates, so instead of `proptest`
//! these run each property over a few hundred samples drawn from the
//! workspace's deterministic [`Rng64`] stream — same invariants, fixed
//! seeds, reproducible failures.

use cent_dram::{DramCommand, PimChannelTiming};
use cent_isa::{decode as isa_decode, encode as isa_encode, Instruction, MacOperand};
use cent_types::{
    AccRegId, BankId, Bf16, ChannelId, ChannelMask, ColAddr, DeviceId, Rng64, RowAddr, SbSlot,
};

const CASES: usize = 300;

// BF16 conversion: every roundtrip through f32 is exact.
#[test]
fn bf16_bits_roundtrip() {
    let mut rng = Rng64::seed(0x1001);
    for _ in 0..CASES {
        let bits = rng.next_u64() as u16;
        let v = Bf16::from_bits(bits);
        if !v.is_nan() {
            assert_eq!(Bf16::from_f32(v.to_f32()).to_bits(), bits);
        }
    }
}

// BF16 quantisation error is within half a ULP (2^-8 relative).
#[test]
fn bf16_error_bound() {
    let mut rng = Rng64::seed(0x1002);
    for _ in 0..CASES {
        let v = rng.uniform(-1.0e30, 1.0e30) as f32;
        let q = Bf16::from_f32(v).to_f32();
        if q.is_finite() {
            assert!((q - v).abs() <= v.abs() / 256.0 + f32::MIN_POSITIVE);
        }
    }
}

// ISA: arbitrary instructions survive the 16-byte encoding.
#[test]
fn isa_roundtrip() {
    let mut rng = Rng64::seed(0x1003);
    for _ in 0..CASES {
        let operand = if rng.next_below(2) == 1 {
            MacOperand::NeighbourBank
        } else {
            MacOperand::GlobalBuffer { slot: rng.next_below(64) as u8 }
        };
        let inst = Instruction::MacAbk {
            chmask: ChannelMask(rng.next_u64() as u32),
            opsize: 1 + rng.next_below(99_999) as u32,
            row: RowAddr(rng.next_below(16384) as u32),
            col: ColAddr(rng.next_below(64) as u32),
            reg: AccRegId::new(rng.next_below(32) as u8),
            operand,
        };
        assert_eq!(isa_decode(&isa_encode(&inst)).unwrap(), inst);
    }
}

#[test]
fn isa_data_movement_roundtrip() {
    let mut rng = Rng64::seed(0x1004);
    for _ in 0..CASES {
        let (dv, rs, rd) = (
            DeviceId(rng.next_below(4096) as u16),
            SbSlot(rng.next_below(2048) as u16),
            SbSlot(rng.next_below(2048) as u16),
        );
        let opsize = 1 + rng.next_below(9_999) as u32;
        let ch = rng.next_below(32) as u16;
        let bank = BankId(rng.next_below(16) as u16);
        for inst in [
            Instruction::SendCxl { dv, rs, rd, opsize },
            Instruction::WrSbk {
                ch: ChannelId(ch),
                opsize,
                bank,
                row: RowAddr(7),
                col: ColAddr(3),
                rs,
            },
            Instruction::RdMac { chmask: ChannelMask(1 << ch), rd, reg: AccRegId::new(0) },
        ] {
            assert_eq!(isa_decode(&isa_encode(&inst)).unwrap(), inst);
        }
    }
}

// DRAM timing: command issue times are monotonically non-decreasing.
#[test]
fn dram_issue_monotonic() {
    let mut rng = Rng64::seed(0x1005);
    for _ in 0..60 {
        let mut ch = PimChannelTiming::new();
        let mut last = cent_types::Time::ZERO;
        for _ in 0..1 + rng.next_below(5) {
            let row = rng.next_below(64) as u32;
            let t = ch.issue(DramCommand::ActAb { row: RowAddr(row) }).unwrap();
            assert!(t >= last);
            last = t;
            for col in 0..8 {
                let t = ch.issue(DramCommand::MacAb { col: ColAddr(col) }).unwrap();
                assert!(t >= last);
                last = t;
            }
            let t = ch.issue(DramCommand::PreAb).unwrap();
            assert!(t >= last);
            last = t;
        }
    }
}

// MAC beat spacing is at least tCCD_S = 1 ns.
#[test]
fn mac_beats_never_closer_than_tccds() {
    let mut rng = Rng64::seed(0x1006);
    for _ in 0..60 {
        let n = 2 + rng.next_below(62) as usize;
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        let mut prev = None;
        for col in 0..n {
            let t = ch.issue(DramCommand::MacAb { col: ColAddr(col as u32) }).unwrap();
            if let Some(p) = prev {
                assert!((t - p).as_ns() >= 1.0);
            }
            prev = Some(t);
        }
    }
}

// GEMV layout: element placement is injective within a matrix.
#[test]
fn gemv_layout_no_aliasing() {
    use cent_compiler::GemvLayout;
    let mut rng = Rng64::seed(0x1007);
    for _ in 0..30 {
        let m = 1 + rng.next_below(95) as usize;
        let n = 1 + rng.next_below(511) as usize;
        let chans = 1 + rng.next_below(3) as u16;
        let channels: Vec<ChannelId> = (0..chans).map(ChannelId).collect();
        let layout = GemvLayout::plan(channels, RowAddr(0), m, n).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for r in (0..m).step_by(3) {
            for e in (0..n).step_by(7) {
                let loc = layout.element_location(r, e);
                assert!(seen.insert(loc));
            }
        }
    }
}

// Shared Buffer allocator: never double-books, errors past capacity.
#[test]
fn sb_allocator_is_disjoint() {
    use cent_compiler::SbAllocator;
    let mut rng = Rng64::seed(0x1008);
    for _ in 0..CASES {
        let mut alloc = SbAllocator::new(0);
        let mut next_expected = 0usize;
        for _ in 0..1 + rng.next_below(19) {
            let s = 1 + rng.next_below(127) as usize;
            match alloc.alloc(s) {
                Ok(slot) => {
                    assert_eq!(slot.index(), next_expected);
                    next_expected += s;
                }
                Err(_) => assert!(next_expected + s > 2048),
            }
        }
    }
}

// CXL gather delivers exactly the multiset of sent payloads.
#[test]
fn cxl_gather_preserves_payloads() {
    use cent_cxl::{CommunicationEngine, FabricConfig};
    use cent_types::{Time, ZERO_BEAT};
    let mut rng = Rng64::seed(0x1009);
    for _ in 0..40 {
        let values: Vec<f32> =
            (0..1 + rng.next_below(7)).map(|_| rng.uniform(-100.0, 100.0) as f32).collect();
        let mut comm = CommunicationEngine::new(FabricConfig::cent(16));
        let contributions: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let mut beat = ZERO_BEAT;
                beat[0] = Bf16::from_f32(*v);
                (DeviceId(i as u16 + 1), vec![beat])
            })
            .collect();
        let msgs = comm.gather(DeviceId(0), &contributions, Time::ZERO).unwrap();
        let mut got: Vec<f32> = msgs.iter().map(|m| m.beats[0][0].to_f32()).collect();
        let mut want: Vec<f32> = values.iter().map(|v| Bf16::from_f32(*v).to_f32()).collect();
        got.sort_by(f32::total_cmp);
        want.sort_by(f32::total_cmp);
        assert_eq!(got, want);
    }
}

// RISC-V interpreter arithmetic matches host semantics.
#[test]
fn riscv_alu_matches_host() {
    use cent_riscv::{assemble, Cpu, Halt, Ram};
    let program = assemble(
        "add  t0, a0, a1
         sub  t1, a0, a1
         xor  t2, a0, a1
         mul  t3, a0, a1
         sltu t4, a0, a1
         ecall",
    )
    .unwrap();
    let mut rng = Rng64::seed(0x100A);
    for _ in 0..CASES {
        let a = rng.next_u64() as u32 as i32;
        let b = rng.next_u64() as u32 as i32;
        let mut ram = Ram::new(4096);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &program).unwrap();
        cpu.set_x(10, a as u32);
        cpu.set_x(11, b as u32);
        assert_eq!(cpu.run(&mut ram, 100).unwrap(), Halt::Ecall);
        assert_eq!(cpu.x(5), a.wrapping_add(b) as u32);
        assert_eq!(cpu.x(6), a.wrapping_sub(b) as u32);
        assert_eq!(cpu.x(7), (a ^ b) as u32);
        assert_eq!(cpu.x(28), a.wrapping_mul(b) as u32);
        assert_eq!(cpu.x(29), u32::from((a as u32) < (b as u32)));
    }
}

#[test]
fn riscv_div_rem_identity() {
    use cent_riscv::{assemble, Cpu, Halt, Ram};
    let program = assemble("div t0, a0, a1\nrem t1, a0, a1\necall").unwrap();
    let mut rng = Rng64::seed(0x100B);
    for _ in 0..CASES {
        let a = rng.next_u64() as u32 as i32;
        let b = rng.next_u64() as u32 as i32;
        if b == 0 || (a == i32::MIN && b == -1) {
            continue;
        }
        let mut ram = Ram::new(4096);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &program).unwrap();
        cpu.set_x(10, a as u32);
        cpu.set_x(11, b as u32);
        assert_eq!(cpu.run(&mut ram, 100).unwrap(), Halt::Ecall);
        let q = cpu.x(5) as i32;
        let r = cpu.x(6) as i32;
        // RISC-V spec: a = q*b + r with |r| < |b| and sign(r) = sign(a).
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        assert!(r == 0 || r.signum() == a.signum());
        assert!(r.unsigned_abs() < b.unsigned_abs());
    }
}

// Activation LUTs: monotone functions stay monotone through the table.
#[test]
fn af_lut_preserves_monotonicity() {
    use cent_pim::{ActivationFunction, AfLut};
    let mut rng = Rng64::seed(0x100C);
    for _ in 0..40 {
        let mut sorted: Vec<f32> =
            (0..2 + rng.next_below(18)).map(|_| rng.uniform(-8.0, 8.0) as f32).collect();
        sorted.sort_by(f32::total_cmp);
        for f in [ActivationFunction::Sigmoid, ActivationFunction::Tanh, ActivationFunction::Exp] {
            let lut = AfLut::new(f);
            let ys: Vec<f32> = sorted.iter().map(|x| lut.eval(*x)).collect();
            for w in ys.windows(2) {
                assert!(w[1] >= w[0] - 1e-4, "{f:?} not monotone: {w:?}");
            }
        }
    }
}

// The PNM exponent pipeline tracks the reference within BF16 tolerance
// across its whole input range.
#[test]
fn exp_taylor_tracks_reference() {
    let mut rng = Rng64::seed(0x100D);
    for _ in 0..CASES {
        let x = rng.uniform(-80.0, 10.0) as f32;
        let got = cent_pnm::exp_taylor(x);
        let want = x.exp();
        let tol = (want * 0.02).abs().max(1e-30);
        assert!((got - want).abs() <= tol, "exp({x}) = {got}, want {want}");
    }
}

// DRAM earliest_issue is a fixed point: issuing at the returned time must
// be legal (the scheduler never undershoots a constraint).
#[test]
fn dram_earliest_issue_is_legal() {
    let mut rng = Rng64::seed(0x100E);
    for _ in 0..40 {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        for _ in 0..1 + rng.next_below(31) {
            let col = ColAddr(rng.next_below(64) as u32);
            let predicted = ch.earliest_issue(DramCommand::MacAb { col }).unwrap();
            let actual = ch.issue(DramCommand::MacAb { col }).unwrap();
            assert_eq!(predicted, actual);
        }
    }
}
