//! Cross-crate integration tests: traces compiled by `cent-compiler`
//! executing on `cent-device` over the `cent-cxl` fabric, verified against
//! `cent-model`'s reference.
use cent::{verify_block, CentSystem, ModelConfig, Strategy};
use cent_model::{reference_block, KvCache};

fn input(cfg: &ModelConfig, t: usize) -> Vec<f32> {
    (0..cfg.hidden).map(|i| 0.1 * ((i as f32 * 0.37 + t as f32 * 1.3).sin())).collect()
}

#[test]
fn full_tiny_model_decode_matches_reference_across_blocks() {
    let cfg = ModelConfig::tiny();
    let mut system = CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).unwrap();
    system.load_random_weights(7).unwrap();

    // Reference: both blocks chained with their own KV caches.
    let w: Vec<_> = (0..cfg.layers).map(|b| system.block_weights(b).unwrap().clone()).collect();
    let mut caches: Vec<KvCache> = (0..cfg.layers).map(|_| KvCache::new()).collect();

    for t in 0..3 {
        let x = input(&cfg, t);
        let mut expect = x.clone();
        for b in 0..cfg.layers {
            expect = reference_block(&cfg, &w[b], &expect, &mut caches[b], t);
        }
        let got = system.decode_token(&x, t).unwrap();
        let scale = expect.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 0.06 * (e.abs() + scale),
                "token {t} elem {i}: {g} vs {e} (scale {scale})"
            );
        }
    }
}

#[test]
fn every_block_verifies_independently() {
    let cfg = ModelConfig::tiny();
    let mut system = CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).unwrap();
    system.load_random_weights(99).unwrap();
    for block in 0..cfg.layers {
        let report = verify_block(&mut system, block, 2, 0.05).unwrap();
        assert_eq!(report.tokens, 2, "block {block}");
    }
}

#[test]
fn timing_only_system_reports_elapsed_time() {
    let cfg = ModelConfig::tiny();
    let mut system = CentSystem::timing_only(&cfg, 1, Strategy::PipelineParallel).unwrap();
    system.load_random_weights(1).unwrap();
    let x = input(&cfg, 0);
    let _ = system.decode_token(&x, 0).unwrap();
    assert!(system.elapsed() > cent::Time::ZERO);
    let b = system.breakdown();
    assert!(b.total() > cent::Time::ZERO);
}

#[test]
fn mapping_and_placement_are_consistent() {
    let cfg = ModelConfig::llama2_7b();
    let system = CentSystem::timing_only(&cfg, 8, Strategy::PipelineParallel).unwrap();
    let mapping = system.mapping();
    assert_eq!(mapping.blocks_per_device, 4);
    assert_eq!(mapping.channels_per_block, 8);
    // Every block has a placement on its assigned device's channels.
    for b in 0..cfg.layers {
        let p = system.placement(b).unwrap();
        assert_eq!(p.channels.len(), 8);
    }
}

#[test]
fn trace_statistics_confirm_mac_dominance() {
    // §2's justification for the hierarchical PIM-PNM design, on a real
    // compiled block trace.
    use cent_compiler::{compile_decode_step, BlockPlacement};
    use cent_isa::analyze;
    let cfg = ModelConfig::llama2_7b();
    let channels: Vec<_> = (0..8).map(cent_types::ChannelId).collect();
    let p = BlockPlacement::plan(&cfg, channels).unwrap();
    let step = compile_decode_step(&p, 1024).unwrap();
    let stats = analyze(&step.trace);
    assert!(stats.mac_flop_fraction() > 0.99, "MAC fraction {}", stats.mac_flop_fraction());
    // The trace fits the 2 MB instruction buffer.
    assert!(step.trace.len() * cent_isa::INST_BYTES <= 2 * 1024 * 1024);
}

#[test]
fn prefill_then_decode_matches_reference_continuation() {
    // §5.5: prefill fills the KV caches token by token; a decode right after
    // must see exactly the state the reference sees.
    let cfg = ModelConfig::tiny();
    let mut system = CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).unwrap();
    system.load_random_weights(55).unwrap();
    let w: Vec<_> = (0..cfg.layers).map(|b| system.block_weights(b).unwrap().clone()).collect();

    let prompt: Vec<Vec<f32>> = (0..4).map(|t| input(&cfg, t)).collect();
    let cent_last = system.prefill(&prompt).unwrap();

    let mut caches: Vec<KvCache> = (0..cfg.layers).map(|_| KvCache::new()).collect();
    let mut expect_last = Vec::new();
    for (t, x) in prompt.iter().enumerate() {
        let mut v = x.clone();
        for b in 0..cfg.layers {
            v = reference_block(&cfg, &w[b], &v, &mut caches[b], t);
        }
        expect_last = v;
    }
    let scale = expect_last.iter().fold(0.0f32, |a, v| a.max(v.abs()));
    for (g, e) in cent_last.iter().zip(&expect_last) {
        assert!((g - e).abs() <= 0.06 * (e.abs() + scale), "prefill tail: {g} vs {e}");
    }

    // One decode step continuing from the prefilled caches.
    let x = input(&cfg, 4);
    let got = system.decode_token(&x, 4).unwrap();
    let mut expect = x.clone();
    for b in 0..cfg.layers {
        expect = reference_block(&cfg, &w[b], &expect, &mut caches[b], 4);
    }
    let scale = expect.iter().fold(0.0f32, |a, v| a.max(v.abs()));
    for (g, e) in got.iter().zip(&expect) {
        assert!((g - e).abs() <= 0.06 * (e.abs() + scale), "decode after prefill: {g} vs {e}");
    }
}

#[test]
fn hybrid_mapping_builds_and_runs() {
    let cfg = ModelConfig::tiny();
    let mut system = CentSystem::functional(&cfg, 2, Strategy::Hybrid { tp: 2 }).unwrap();
    system.load_random_weights(3).unwrap();
    let out = system.decode_token(&input(&cfg, 0), 0).unwrap();
    assert_eq!(out.len(), cfg.hidden);
    assert_eq!(system.mapping().tp_degree, 2);
}
