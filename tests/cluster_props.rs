//! Property-style tests for the cluster-level fleet simulator.
//!
//! No external crates, so properties run over seeded workloads from the
//! in-tree deterministic PRNG. They pin the determinism contract of
//! `cent_cluster::simulate_fleet`:
//!
//! 1. the merged `FleetReport` is **bit-identical across worker-thread
//!    counts** (1 / 2 / 8) for the same seed — including the acceptance
//!    shape, a 1000-group diurnal hour with over a million requests;
//! 2. session-affinity routing never splits a session across groups;
//! 3. power-of-two-choices routing is fully determined by its seed;
//! 4. the merged fleet histogram equals the concatenation of the
//!    per-group populations, in any merge order, and the fleet latency
//!    distributions equal those recomputed from the concatenated records;
//! 5. under fault injection: every request completes exactly once or is
//!    dropped after `max_attempts`, crash re-decode work never double
//!    counts completions, a seeded chaos schedule stays bit-identical
//!    across worker-thread counts, and a zero-fault schedule reproduces
//!    the faultless driver exactly.

use cent_cluster::{
    simulate_fleet, simulate_fleet_instrumented, ChaosRates, FaultPlan, FaultSchedule, FaultSpec,
    FleetOptions, JoinShortestQueue, PowerOfTwoChoices, RetryPolicy, RoundRobin, RoutingPolicy,
    SessionAffinity,
};
use cent_model::ModelConfig;
use cent_serving::{
    KvBudget, KvMode, LatencyStats, LengthSampler, LoadCurve, RequestSpec, SchedulerConfig,
    ServingSystem, Workload,
};
use cent_types::{SortedSamples, Time, TimeHistogram};

/// One pipeline group: 4 decode slots, 1 ms token cadence, 1000 tok/s
/// prefill — the serving crate's reference toy deployment.
fn group_system() -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: 4,
            kv_budget: KvBudget::tokens(4000),
            kv: KvMode::FullReservation,
        },
        Time::from_us(1000),
        1000.0,
        4000.0,
    )
}

fn fixed_trace(
    qps: f64,
    seed: u64,
    horizon_s: f64,
    prompt: usize,
    decode: usize,
) -> Vec<RequestSpec> {
    let w = Workload {
        lengths: LengthSampler::Fixed { prompt, decode },
        ..Workload::chatbot(qps, seed)
    };
    w.generate(Time::from_secs_f64(horizon_s), 4096)
}

fn run_threads(
    trace: &[RequestSpec],
    qps: f64,
    groups: usize,
    epoch: Time,
    threads: usize,
    mut router: Box<dyn RoutingPolicy>,
) -> cent_cluster::FleetReport {
    simulate_fleet(
        &group_system(),
        trace,
        qps,
        router.as_mut(),
        &FleetOptions::new(groups).with_threads(threads).with_epoch(epoch),
    )
}

#[test]
fn fleet_report_is_bit_identical_across_worker_threads() {
    let trace = fixed_trace(200.0, 17, 30.0, 16, 32);
    let epoch = Time::from_secs_f64(0.05);
    let routers: Vec<fn() -> Box<dyn RoutingPolicy>> = vec![
        || Box::new(JoinShortestQueue),
        || Box::new(PowerOfTwoChoices::seeded(42)),
        || Box::new(RoundRobin::default()),
        || Box::new(SessionAffinity),
    ];
    for make in routers {
        let base = run_threads(&trace, 200.0, 32, epoch, 1, make());
        assert_eq!(base.completed, trace.len());
        for threads in [2, 8] {
            let other = run_threads(&trace, 200.0, 32, epoch, threads, make());
            assert_eq!(base, other, "threads {threads} diverged from 1");
        }
    }
}

/// The ISSUE acceptance shape: a 1000-group fleet serving a diurnal hour
/// with over a million requests, bit-identical across 1/2/8 workers.
#[test]
fn thousand_group_diurnal_hour_is_thread_count_invariant() {
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 32, decode: 64 },
        ..Workload::chatbot(290.0, 4242)
    };
    let curve = LoadCurve::diurnal(3600.0, 0.5, 1.5);
    let trace = workload.generate_modulated(Time::from_secs_f64(3600.0), 4096, &curve, 77);
    assert!(trace.len() >= 1_000_000, "only {} requests", trace.len());
    let epoch = Time::from_secs_f64(1.0);
    let run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(9);
        simulate_fleet(
            &group_system(),
            &trace,
            290.0,
            &mut router,
            &FleetOptions::new(1000).with_threads(threads).with_epoch(epoch),
        )
    };
    let base = run(1);
    assert_eq!(base.submitted, trace.len());
    assert_eq!(base.completed, trace.len());
    assert_eq!(base.groups, 1000);
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "threads {threads} diverged from 1");
    }
}

#[test]
fn session_affinity_never_splits_a_session() {
    let mut trace = fixed_trace(150.0, 23, 20.0, 16, 32);
    Workload::assign_sessions(&mut trace, 40, 5);
    let mut router = SessionAffinity;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        150.0,
        &mut router,
        &FleetOptions::new(16).with_epoch(Time::from_secs_f64(0.1)),
    );
    // Routing decisions: one group per session.
    let mut session_group = std::collections::BTreeMap::new();
    for (spec, &g) in trace.iter().zip(&fleet.routed) {
        let prior = session_group.entry(spec.session).or_insert(g);
        assert_eq!(*prior, g, "session {:?} split across groups", spec.session);
    }
    // And the served records agree: every record of a session lives in
    // that session's group outcome.
    for (g, outcome) in fleet.groups.iter().enumerate() {
        for r in &outcome.records {
            assert_eq!(session_group[&r.spec.session], g);
        }
    }
    assert!(session_group.len() <= 40);
}

#[test]
fn power_of_two_routing_is_deterministic_per_seed() {
    let trace = fixed_trace(150.0, 31, 15.0, 16, 32);
    let opts = FleetOptions::new(24).with_epoch(Time::from_secs_f64(0.1));
    let routed = |seed: u64| {
        let mut router = PowerOfTwoChoices::seeded(seed);
        simulate_fleet_instrumented(&group_system(), &trace, 150.0, &mut router, &opts).routed
    };
    assert_eq!(routed(1), routed(1), "same seed must reproduce every decision");
    assert_ne!(routed(1), routed(2), "different seeds should diverge");
}

#[test]
fn merged_fleet_histogram_equals_concatenated_populations() {
    let trace = fixed_trace(220.0, 53, 20.0, 16, 32);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        220.0,
        &mut router,
        &FleetOptions::new(8).with_epoch(Time::from_secs_f64(0.05)),
    );
    // Histogram merge is order-independent and equals the concatenation.
    let mut forward = TimeHistogram::new();
    for o in &fleet.groups {
        forward.merge(&o.tbt);
    }
    let mut backward = TimeHistogram::new();
    for o in fleet.groups.iter().rev() {
        backward.merge(&o.tbt);
    }
    assert_eq!(forward, backward);
    assert_eq!(fleet.report.tbt, LatencyStats::from_histogram(&forward));
    assert_eq!(forward.count(), fleet.groups.iter().map(|o| o.tbt.count()).sum::<u64>());
    // Fleet latency distributions equal those recomputed from the
    // concatenated per-group record populations.
    let all: Vec<_> = fleet.groups.iter().flat_map(|o| o.records.iter()).collect();
    let ttfts = SortedSamples::new(all.iter().map(|r| r.ttft()).collect());
    let lats = SortedSamples::new(all.iter().map(|r| r.query_latency()).collect());
    assert_eq!(fleet.report.ttft, LatencyStats::from_sorted(&ttfts));
    assert_eq!(fleet.report.query_latency, LatencyStats::from_sorted(&lats));
    assert_eq!(fleet.report.completed, all.len());
}

#[test]
fn faulted_requests_complete_exactly_once_or_drop_after_max_attempts() {
    // Rolling crashes with a tight retry budget: every request either
    // completes on exactly one group or is dropped once its attempts are
    // exhausted — never both, never twice.
    let trace = fixed_trace(60.0, 71, 2.0, 10, 400);
    let specs: Vec<FaultSpec> = (0..4)
        .map(|k| FaultSpec::GroupCrash {
            group: k % 2,
            at: Time::from_secs_f64(0.3 + 0.4 * k as f64),
            recover_after: Some(Time::from_secs_f64(0.25)),
        })
        .collect();
    let retry = RetryPolicy { max_attempts: 2, backoff: Time::from_us(10_000) };
    let opts = FleetOptions::new(2)
        .with_epoch(Time::from_secs_f64(0.05))
        .with_faults(FaultSchedule::new(specs))
        .with_retry(retry);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 60.0, &mut router, &opts);
    assert!(fleet.faults.crashes >= 1);
    assert!(fleet.faults.retries > 0, "rolling crashes under load must orphan work");
    // Exactly-once: completion records carry unique request ids.
    let mut ids: Vec<u64> =
        fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| r.spec.id.0)).collect();
    ids.sort_unstable();
    let mut unique = ids.clone();
    unique.dedup();
    assert_eq!(ids, unique, "a request completed on more than one group");
    // Conservation: completed + rejected + dropped covers the trace.
    assert_eq!(
        fleet.report.completed + fleet.report.rejected + fleet.faults.dropped.len(),
        trace.len()
    );
    // Dropped requests never also appear as completions.
    for (id, _) in &fleet.faults.dropped {
        assert!(ids.binary_search(&id.0).is_err(), "dropped {id:?} also completed");
    }
    // The retry budget is a hard cap on dispatches, so no request can be
    // orphaned more often than max_attempts.
    let mut orphan_counts = std::collections::BTreeMap::new();
    for (id, _) in &fleet.faults.orphaned {
        *orphan_counts.entry(id.0).or_insert(0u32) += 1;
    }
    assert!(orphan_counts.values().all(|&n| n <= retry.max_attempts));
}

#[test]
fn crash_redecode_repeats_work_but_never_completions() {
    // A crash loses the group's KV state: orphans re-prefill and re-decode
    // from scratch on the victim's survivors, so generated-token *work*
    // exceeds what the completions alone need — while the completion
    // records (the metrics population) still count each request once, with
    // TTFT measured from the original arrival across the failover.
    let trace = fixed_trace(60.0, 13, 2.0, 10, 400);
    let faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 0,
        at: Time::from_secs_f64(0.5),
        recover_after: Some(Time::from_secs_f64(0.8)),
    }]);
    let opts = FleetOptions::new(3).with_epoch(Time::from_secs_f64(0.05)).with_faults(faults);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 60.0, &mut router, &opts);
    assert!(!fleet.faults.orphaned.is_empty(), "a loaded group must strand work");
    assert_eq!(fleet.report.completed, trace.len());
    // `stats.tokens` is the live event-core counter (every generated
    // token, pre-crash progress included); `decode_tokens` is rebuilt from
    // the completion records. Work exceeds the record population, and the
    // records never double count.
    let work: u64 = fleet.groups.iter().map(|o| o.stats.tokens).sum();
    let useful: u64 =
        fleet.groups.iter().flat_map(|o| o.records.iter()).map(|r| r.spec.decode as u64).sum();
    assert_eq!(useful, 400 * trace.len() as u64);
    assert_eq!(useful, fleet.groups.iter().map(|o| o.report.decode_tokens).sum::<u64>());
    assert!(work > useful, "pre-crash decode progress is real work: {work} vs {useful}");
    // Every orphaned-then-completed request restarted after its crash and
    // kept its TTFT clock running from the original arrival.
    let records: std::collections::BTreeMap<u64, _> =
        fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| (r.spec.id.0, r))).collect();
    for (id, at) in &fleet.faults.orphaned {
        let r = records[&id.0];
        assert!(r.first_token >= *at, "completion predates the crash that orphaned it");
        assert!(r.ttft() >= at.saturating_sub(r.spec.arrival));
    }
}

/// The ISSUE acceptance shape for fault injection: a seeded chaos schedule
/// over a 64-group diurnal fleet is bit-identical across 1/2/8 workers and
/// visibly degraded (availability below one, retries engaged, nonzero
/// failover percentiles).
#[test]
fn chaos_on_a_diurnal_fleet_is_thread_count_invariant() {
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 32, decode: 64 },
        ..Workload::chatbot(512.0, 909)
    };
    let curve = LoadCurve::diurnal(60.0, 0.5, 1.5);
    let trace = workload.generate_modulated(Time::from_secs_f64(60.0), 4096, &curve, 33);
    let faults = FaultPlan::chaos(7, 64, Time::from_secs_f64(60.0), &ChaosRates::default());
    assert!(!faults.is_empty(), "default chaos rates must inject something in a minute");
    let run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(5);
        simulate_fleet(
            &group_system(),
            &trace,
            512.0,
            &mut router,
            &FleetOptions::new(64)
                .with_threads(threads)
                .with_epoch(Time::from_secs_f64(0.05))
                .with_faults(faults.clone())
                .with_retry(RetryPolicy { max_attempts: 4, backoff: Time::from_us(20_000) }),
        )
    };
    let base = run(1);
    let degraded = base.degraded.as_ref().expect("chaos run reports degraded mode");
    assert!(degraded.availability < 1.0, "crash outages must dent availability");
    assert!(degraded.availability > 0.5, "the fleet is degraded, not dead");
    assert!(degraded.retries > 0, "failover must redispatch orphans");
    assert!(degraded.failover_latency.p50 > Time::ZERO, "failover percentiles populated");
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "threads {threads} diverged under chaos");
    }
}

#[test]
fn zero_fault_schedule_reproduces_the_faultless_driver_exactly() {
    let trace = fixed_trace(200.0, 17, 10.0, 16, 32);
    let epoch = Time::from_secs_f64(0.05);
    let base = FleetOptions::new(16).with_epoch(epoch);
    let plain = simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &base);
    let empty = base.clone().with_faults(FaultSchedule::empty());
    assert_eq!(
        plain,
        simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &empty)
    );
    // Chaos with vanishing rates compiles to no events at all, and an
    // event-free schedule is *exactly* the healthy driver — not merely a
    // statistically similar one.
    let rates = ChaosRates {
        crash_rate: 1e-12,
        degrade_rate: 1e-12,
        straggler_probability: 0.0,
        ..ChaosRates::default()
    };
    let chaos = FaultPlan::chaos(3, 16, Time::from_secs_f64(10.0), &rates);
    assert!(chaos.is_empty());
    let quiet = base.with_faults(chaos);
    assert_eq!(
        plain,
        simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &quiet)
    );
}
