//! Property-style tests for the cluster-level fleet simulator.
//!
//! No external crates, so properties run over seeded workloads from the
//! in-tree deterministic PRNG. They pin the determinism contract of
//! `cent_cluster::simulate_fleet`:
//!
//! 1. the merged `FleetReport` is **bit-identical across worker-thread
//!    counts** (1 / 2 / 8) for the same seed — including the acceptance
//!    shape, a 1000-group diurnal hour with over a million requests;
//! 2. session-affinity routing never splits a session across groups;
//! 3. power-of-two-choices routing is fully determined by its seed;
//! 4. the merged fleet histogram equals the concatenation of the
//!    per-group populations, in any merge order, and the fleet latency
//!    distributions equal those recomputed from the concatenated records;
//! 5. under fault injection: every request completes exactly once or is
//!    dropped after `max_attempts`, crash re-decode work never double
//!    counts completions, a seeded chaos schedule stays bit-identical
//!    across worker-thread counts, and a zero-fault schedule reproduces
//!    the faultless driver exactly;
//! 6. for the disaggregated prefill/decode driver: every request's prompt
//!    is served exactly once on the prefill tier and its continuation
//!    exactly once on the decode tier, the shared-pool capacity bound is
//!    never exceeded (publishes defer instead), the split fleet is
//!    bit-identical across 1/2/8 worker threads with handoffs in flight,
//!    and an all-`Colocated` configuration reproduces the base driver
//!    bit for bit;
//! 7. `FaultPlan::chaos` behaves at its rate extremes: `crash_rate = 0`
//!    draws no crashes and conserves every request, `crash_rate = 1`
//!    drives the whole fleet down at once and the driver defers the
//!    arrivals that land in the outage instead of losing them;
//! 8. survivable disaggregation: a decode-tier crash rescues its claimed
//!    contexts from the durable pool's parked copies exactly once (and
//!    beats the volatile-pool re-prefill fallback on first-token floors),
//!    warm rejoin is never worse than cold on the same schedule, a
//!    combined disagg + chaos + recovery + admission run is bit-identical
//!    across 1/2/8 workers under the extended conservation invariant
//!    `completed + rejected + dropped + shed = offered`, and an
//!    event-free schedule reproduces the fault-free split driver exactly.

use cent_cluster::{
    simulate_fleet, simulate_fleet_disagg, simulate_fleet_instrumented, AdmissionPolicy,
    ChaosRates, DisaggConfig, FaultPlan, FaultSchedule, FaultSpec, FleetOptions, JoinShortestQueue,
    PowerOfTwoChoices, RecoveryMode, RetryPolicy, RoundRobin, RoutingPolicy, SessionAffinity,
};
use cent_cost::KvSwapCost;
use cent_cxl::FabricConfig;
use cent_model::ModelConfig;
use cent_serving::{
    KvBudget, KvMode, LatencyStats, LengthSampler, LoadCurve, PriorityClass, RequestSpec,
    SchedulerConfig, ServingSystem, Workload,
};
use cent_types::{ByteSize, SortedSamples, Time, TimeHistogram};

/// One pipeline group: 4 decode slots, 1 ms token cadence, 1000 tok/s
/// prefill — the serving crate's reference toy deployment.
fn group_system() -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: 4,
            kv_budget: KvBudget::tokens(4000),
            kv: KvMode::FullReservation,
        },
        Time::from_us(1000),
        1000.0,
        4000.0,
    )
}

fn fixed_trace(
    qps: f64,
    seed: u64,
    horizon_s: f64,
    prompt: usize,
    decode: usize,
) -> Vec<RequestSpec> {
    let w = Workload {
        lengths: LengthSampler::Fixed { prompt, decode },
        ..Workload::chatbot(qps, seed)
    };
    w.generate(Time::from_secs_f64(horizon_s), 4096)
}

fn run_threads(
    trace: &[RequestSpec],
    qps: f64,
    groups: usize,
    epoch: Time,
    threads: usize,
    mut router: Box<dyn RoutingPolicy>,
) -> cent_cluster::FleetReport {
    simulate_fleet(
        &group_system(),
        trace,
        qps,
        router.as_mut(),
        &FleetOptions::new(groups).with_threads(threads).with_epoch(epoch),
    )
}

#[test]
fn fleet_report_is_bit_identical_across_worker_threads() {
    let trace = fixed_trace(200.0, 17, 30.0, 16, 32);
    let epoch = Time::from_secs_f64(0.05);
    let routers: Vec<fn() -> Box<dyn RoutingPolicy>> = vec![
        || Box::new(JoinShortestQueue),
        || Box::new(PowerOfTwoChoices::seeded(42)),
        || Box::new(RoundRobin::default()),
        || Box::new(SessionAffinity),
    ];
    for make in routers {
        let base = run_threads(&trace, 200.0, 32, epoch, 1, make());
        assert_eq!(base.completed, trace.len());
        for threads in [2, 8] {
            let other = run_threads(&trace, 200.0, 32, epoch, threads, make());
            assert_eq!(base, other, "threads {threads} diverged from 1");
        }
    }
}

/// The ISSUE acceptance shape: a 1000-group fleet serving a diurnal hour
/// with over a million requests, bit-identical across 1/2/8 workers.
#[test]
fn thousand_group_diurnal_hour_is_thread_count_invariant() {
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 32, decode: 64 },
        ..Workload::chatbot(290.0, 4242)
    };
    let curve = LoadCurve::diurnal(3600.0, 0.5, 1.5);
    let trace = workload.generate_modulated(Time::from_secs_f64(3600.0), 4096, &curve, 77);
    assert!(trace.len() >= 1_000_000, "only {} requests", trace.len());
    let epoch = Time::from_secs_f64(1.0);
    let run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(9);
        simulate_fleet(
            &group_system(),
            &trace,
            290.0,
            &mut router,
            &FleetOptions::new(1000).with_threads(threads).with_epoch(epoch),
        )
    };
    let base = run(1);
    assert_eq!(base.submitted, trace.len());
    assert_eq!(base.completed, trace.len());
    assert_eq!(base.groups, 1000);
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "threads {threads} diverged from 1");
    }
}

#[test]
fn session_affinity_never_splits_a_session() {
    let mut trace = fixed_trace(150.0, 23, 20.0, 16, 32);
    Workload::assign_sessions(&mut trace, 40, 5);
    let mut router = SessionAffinity;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        150.0,
        &mut router,
        &FleetOptions::new(16).with_epoch(Time::from_secs_f64(0.1)),
    );
    // Routing decisions: one group per session.
    let mut session_group = std::collections::BTreeMap::new();
    for (spec, &g) in trace.iter().zip(&fleet.routed) {
        let prior = session_group.entry(spec.session).or_insert(g);
        assert_eq!(*prior, g, "session {:?} split across groups", spec.session);
    }
    // And the served records agree: every record of a session lives in
    // that session's group outcome.
    for (g, outcome) in fleet.groups.iter().enumerate() {
        for r in &outcome.records {
            assert_eq!(session_group[&r.spec.session], g);
        }
    }
    assert!(session_group.len() <= 40);
}

#[test]
fn power_of_two_routing_is_deterministic_per_seed() {
    let trace = fixed_trace(150.0, 31, 15.0, 16, 32);
    let opts = FleetOptions::new(24).with_epoch(Time::from_secs_f64(0.1));
    let routed = |seed: u64| {
        let mut router = PowerOfTwoChoices::seeded(seed);
        simulate_fleet_instrumented(&group_system(), &trace, 150.0, &mut router, &opts).routed
    };
    assert_eq!(routed(1), routed(1), "same seed must reproduce every decision");
    assert_ne!(routed(1), routed(2), "different seeds should diverge");
}

#[test]
fn merged_fleet_histogram_equals_concatenated_populations() {
    let trace = fixed_trace(220.0, 53, 20.0, 16, 32);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        220.0,
        &mut router,
        &FleetOptions::new(8).with_epoch(Time::from_secs_f64(0.05)),
    );
    // Histogram merge is order-independent and equals the concatenation.
    let mut forward = TimeHistogram::new();
    for o in &fleet.groups {
        forward.merge(&o.tbt);
    }
    let mut backward = TimeHistogram::new();
    for o in fleet.groups.iter().rev() {
        backward.merge(&o.tbt);
    }
    assert_eq!(forward, backward);
    assert_eq!(fleet.report.tbt, LatencyStats::from_histogram(&forward));
    assert_eq!(forward.count(), fleet.groups.iter().map(|o| o.tbt.count()).sum::<u64>());
    // Fleet latency distributions equal those recomputed from the
    // concatenated per-group record populations.
    let all: Vec<_> = fleet.groups.iter().flat_map(|o| o.records.iter()).collect();
    let ttfts = SortedSamples::new(all.iter().map(|r| r.ttft()).collect());
    let lats = SortedSamples::new(all.iter().map(|r| r.query_latency()).collect());
    assert_eq!(fleet.report.ttft, LatencyStats::from_sorted(&ttfts));
    assert_eq!(fleet.report.query_latency, LatencyStats::from_sorted(&lats));
    assert_eq!(fleet.report.completed, all.len());
}

#[test]
fn faulted_requests_complete_exactly_once_or_drop_after_max_attempts() {
    // Rolling crashes with a tight retry budget: every request either
    // completes on exactly one group or is dropped once its attempts are
    // exhausted — never both, never twice.
    let trace = fixed_trace(60.0, 71, 2.0, 10, 400);
    let specs: Vec<FaultSpec> = (0..4)
        .map(|k| FaultSpec::GroupCrash {
            group: k % 2,
            at: Time::from_secs_f64(0.3 + 0.4 * k as f64),
            recover_after: Some(Time::from_secs_f64(0.25)),
        })
        .collect();
    let retry = RetryPolicy { max_attempts: 2, backoff: Time::from_us(10_000) };
    let opts = FleetOptions::new(2)
        .with_epoch(Time::from_secs_f64(0.05))
        .with_faults(FaultSchedule::new(specs))
        .with_retry(retry);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 60.0, &mut router, &opts);
    assert!(fleet.faults.crashes >= 1);
    assert!(fleet.faults.retries > 0, "rolling crashes under load must orphan work");
    // Exactly-once: completion records carry unique request ids.
    let mut ids: Vec<u64> =
        fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| r.spec.id.0)).collect();
    ids.sort_unstable();
    let mut unique = ids.clone();
    unique.dedup();
    assert_eq!(ids, unique, "a request completed on more than one group");
    // Conservation: completed + rejected + dropped covers the trace.
    assert_eq!(
        fleet.report.completed + fleet.report.rejected + fleet.faults.dropped.len(),
        trace.len()
    );
    // Dropped requests never also appear as completions.
    for (id, _) in &fleet.faults.dropped {
        assert!(ids.binary_search(&id.0).is_err(), "dropped {id:?} also completed");
    }
    // The retry budget is a hard cap on dispatches, so no request can be
    // orphaned more often than max_attempts.
    let mut orphan_counts = std::collections::BTreeMap::new();
    for (id, _) in &fleet.faults.orphaned {
        *orphan_counts.entry(id.0).or_insert(0u32) += 1;
    }
    assert!(orphan_counts.values().all(|&n| n <= retry.max_attempts));
}

#[test]
fn crash_redecode_repeats_work_but_never_completions() {
    // A crash loses the group's KV state: orphans re-prefill and re-decode
    // from scratch on the victim's survivors, so generated-token *work*
    // exceeds what the completions alone need — while the completion
    // records (the metrics population) still count each request once, with
    // TTFT measured from the original arrival across the failover.
    let trace = fixed_trace(60.0, 13, 2.0, 10, 400);
    let faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 0,
        at: Time::from_secs_f64(0.5),
        recover_after: Some(Time::from_secs_f64(0.8)),
    }]);
    let opts = FleetOptions::new(3).with_epoch(Time::from_secs_f64(0.05)).with_faults(faults);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 60.0, &mut router, &opts);
    assert!(!fleet.faults.orphaned.is_empty(), "a loaded group must strand work");
    assert_eq!(fleet.report.completed, trace.len());
    // `stats.tokens` is the live event-core counter (every generated
    // token, pre-crash progress included); `decode_tokens` is rebuilt from
    // the completion records. Work exceeds the record population, and the
    // records never double count.
    let work: u64 = fleet.groups.iter().map(|o| o.stats.tokens).sum();
    let useful: u64 =
        fleet.groups.iter().flat_map(|o| o.records.iter()).map(|r| r.spec.decode as u64).sum();
    assert_eq!(useful, 400 * trace.len() as u64);
    assert_eq!(useful, fleet.groups.iter().map(|o| o.report.decode_tokens).sum::<u64>());
    assert!(work > useful, "pre-crash decode progress is real work: {work} vs {useful}");
    // Every orphaned-then-completed request restarted after its crash and
    // kept its TTFT clock running from the original arrival.
    let records: std::collections::BTreeMap<u64, _> =
        fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| (r.spec.id.0, r))).collect();
    for (id, at) in &fleet.faults.orphaned {
        let r = records[&id.0];
        assert!(r.first_token >= *at, "completion predates the crash that orphaned it");
        assert!(r.ttft() >= at.saturating_sub(r.spec.arrival));
    }
}

/// The ISSUE acceptance shape for fault injection: a seeded chaos schedule
/// over a 64-group diurnal fleet is bit-identical across 1/2/8 workers and
/// visibly degraded (availability below one, retries engaged, nonzero
/// failover percentiles).
#[test]
fn chaos_on_a_diurnal_fleet_is_thread_count_invariant() {
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 32, decode: 64 },
        ..Workload::chatbot(512.0, 909)
    };
    let curve = LoadCurve::diurnal(60.0, 0.5, 1.5);
    let trace = workload.generate_modulated(Time::from_secs_f64(60.0), 4096, &curve, 33);
    let faults = FaultPlan::chaos(7, 64, Time::from_secs_f64(60.0), &ChaosRates::default());
    assert!(!faults.is_empty(), "default chaos rates must inject something in a minute");
    let run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(5);
        simulate_fleet(
            &group_system(),
            &trace,
            512.0,
            &mut router,
            &FleetOptions::new(64)
                .with_threads(threads)
                .with_epoch(Time::from_secs_f64(0.05))
                .with_faults(faults.clone())
                .with_retry(RetryPolicy { max_attempts: 4, backoff: Time::from_us(20_000) }),
        )
    };
    let base = run(1);
    let degraded = base.degraded.as_ref().expect("chaos run reports degraded mode");
    assert!(degraded.availability < 1.0, "crash outages must dent availability");
    assert!(degraded.availability > 0.5, "the fleet is degraded, not dead");
    assert!(degraded.retries > 0, "failover must redispatch orphans");
    assert!(degraded.failover_latency.p50 > Time::ZERO, "failover percentiles populated");
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "threads {threads} diverged under chaos");
    }
}

#[test]
fn zero_fault_schedule_reproduces_the_faultless_driver_exactly() {
    let trace = fixed_trace(200.0, 17, 10.0, 16, 32);
    let epoch = Time::from_secs_f64(0.05);
    let base = FleetOptions::new(16).with_epoch(epoch);
    let plain = simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &base);
    let empty = base.clone().with_faults(FaultSchedule::empty());
    assert_eq!(
        plain,
        simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &empty)
    );
    // Chaos with vanishing rates compiles to no events at all, and an
    // event-free schedule is *exactly* the healthy driver — not merely a
    // statistically similar one.
    let rates = ChaosRates {
        crash_rate: 1e-12,
        degrade_rate: 1e-12,
        straggler_probability: 0.0,
        ..ChaosRates::default()
    };
    let chaos = FaultPlan::chaos(3, 16, Time::from_secs_f64(10.0), &rates);
    assert!(chaos.is_empty());
    let quiet = base.with_faults(chaos);
    assert_eq!(
        plain,
        simulate_fleet(&group_system(), &trace, 200.0, &mut JoinShortestQueue, &quiet)
    );
}

/// One context transfer over the switch fabric: CENT per-token page size,
/// two extra switch hops versus a direct host link.
fn handoff_cost() -> KvSwapCost {
    KvSwapCost::cent(ByteSize::bytes(512)).with_switch_hops(2, &FabricConfig::cent(32))
}

#[test]
fn disagg_handoff_is_exactly_once_per_request() {
    // Mixed workload: most requests decode 40 tokens, every fifth decodes
    // a single token and therefore finishes on its prefill group with
    // nothing to hand off.
    let mut trace = fixed_trace(80.0, 91, 10.0, 100, 40);
    for spec in trace.iter_mut().step_by(5) {
        spec.decode = 1;
    }
    let singles = trace.iter().filter(|s| s.decode == 1).count() as u64;
    let multi = trace.len() as u64 - singles;
    let cfg = DisaggConfig::split(2, 2, 64_000, handoff_cost()).with_prefill_chunk(32);
    let mut router = JoinShortestQueue;
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        80.0,
        &mut router,
        &FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05)),
        &cfg,
    );
    assert_eq!(out.report.completed, trace.len());
    assert_eq!(out.log.handoffs, multi);
    assert_eq!(out.log.singles, singles);
    // Every request's prompt phase lands on the prefill tier exactly once.
    let tier_ids = |groups: &[usize]| -> Vec<u64> {
        let mut ids: Vec<u64> = groups
            .iter()
            .flat_map(|&g| out.groups[g].records.iter().map(|r| r.spec.id.0))
            .collect();
        ids.sort_unstable();
        ids
    };
    let prefill_ids = tier_ids(&[0, 1]);
    let mut all_ids: Vec<u64> = trace.iter().map(|s| s.id.0).collect();
    all_ids.sort_unstable();
    assert_eq!(prefill_ids, all_ids, "prefill tier must serve every prompt exactly once");
    // Every request with decode work left appears on the decode tier
    // exactly once — and the single-token requests never do.
    let decode_ids = tier_ids(&[2, 3]);
    let mut multi_ids: Vec<u64> = trace.iter().filter(|s| s.decode > 1).map(|s| s.id.0).collect();
    multi_ids.sort_unstable();
    assert_eq!(decode_ids, multi_ids, "decode tier must claim each handoff exactly once");
    // Token conservation across the phase split: the prefill tier decodes
    // exactly one token per request, the decode tier the remainder.
    let tier_tokens = |groups: &[usize]| -> u64 {
        groups.iter().map(|&g| out.groups[g].report.decode_tokens).sum()
    };
    assert_eq!(tier_tokens(&[0, 1]), trace.len() as u64);
    assert_eq!(
        tier_tokens(&[2, 3]),
        trace.iter().map(|s| s.decode as u64).sum::<u64>() - trace.len() as u64
    );
}

#[test]
fn disagg_pool_bound_defers_publishes_but_never_overflows() {
    // A pool that holds a single 101-token context at a time: publishes
    // must defer under concurrency, and nothing may slip past the bound.
    let trace = fixed_trace(100.0, 47, 5.0, 100, 40);
    let cfg = DisaggConfig::split(2, 2, 150, handoff_cost());
    let mut router = RoundRobin::default();
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        100.0,
        &mut router,
        &FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05)),
        &cfg,
    );
    assert!(out.log.deferred > 0, "a one-context pool under load must defer publishes");
    assert_eq!(out.log.pool_capacity_tokens, 150);
    assert!(
        out.log.pool_peak_tokens <= out.log.pool_capacity_tokens,
        "pool peak {} exceeded the {}-token bound",
        out.log.pool_peak_tokens,
        out.log.pool_capacity_tokens
    );
    // Deferral loses nothing: every request still completes.
    assert_eq!(out.report.completed, trace.len());
    assert_eq!(out.log.handoffs, trace.len() as u64);
    let disagg = out.report.disagg.as_ref().expect("split run must report a disagg section");
    assert_eq!(disagg.pool_peak_tokens, out.log.pool_peak_tokens);
    assert_eq!(disagg.deferred_publishes, out.log.deferred);
}

#[test]
fn disagg_fleet_is_bit_identical_across_worker_threads() {
    let trace = fixed_trace(120.0, 29, 15.0, 64, 48);
    let run = |threads: usize| {
        let cfg = DisaggConfig::split(2, 2, 64_000, handoff_cost()).with_prefill_chunk(32);
        let mut router = JoinShortestQueue;
        simulate_fleet_disagg(
            &group_system(),
            &trace,
            120.0,
            &mut router,
            &FleetOptions::new(4).with_threads(threads).with_epoch(Time::from_secs_f64(0.05)),
            &cfg,
        )
    };
    let base = run(1);
    assert!(base.log.handoffs > 0, "the invariance run must have handoffs in flight");
    assert_eq!(base.report.completed, trace.len());
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(base.report, other.report, "threads {threads} diverged from 1");
        assert_eq!(base.routed, other.routed, "threads {threads} changed routing");
        assert_eq!(base.log, other.log, "threads {threads} changed the disagg log");
    }
}

#[test]
fn colocated_disagg_config_is_the_base_driver_bit_for_bit() {
    let trace = fixed_trace(150.0, 61, 10.0, 16, 32);
    let opts = FleetOptions::new(8).with_epoch(Time::from_secs_f64(0.05));
    let mut router = PowerOfTwoChoices::seeded(3);
    let base = simulate_fleet_instrumented(&group_system(), &trace, 150.0, &mut router, &opts);
    let mut router = PowerOfTwoChoices::seeded(3);
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        150.0,
        &mut router,
        &opts,
        &DisaggConfig::colocated(8),
    );
    assert_eq!(out.report, base.report, "colocated disagg must not perturb the report");
    assert_eq!(out.routed, base.routed, "colocated disagg must not perturb routing");
    assert!(out.report.disagg.is_none(), "a colocated run reports no disagg section");
    assert_eq!(out.log, cent_cluster::DisaggLog::default());
}

#[test]
fn chaos_zero_crash_rate_draws_no_crashes_and_conserves_every_request() {
    // The crash process switched off entirely: the schedule may still
    // carry degrade windows and stragglers, but no request can be
    // orphaned or dropped, so completed + rejected covers the trace.
    let rates = ChaosRates { crash_rate: 0.0, ..ChaosRates::default() };
    let faults = FaultPlan::chaos(99, 8, Time::from_secs_f64(60.0), &rates);
    assert!(
        faults.specs().iter().all(|s| !matches!(s, FaultSpec::GroupCrash { .. })),
        "crash_rate 0 must draw no crash specs"
    );
    let trace = fixed_trace(100.0, 37, 10.0, 16, 32);
    let opts = FleetOptions::new(8).with_epoch(Time::from_secs_f64(0.05)).with_faults(faults);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 100.0, &mut router, &opts);
    assert_eq!(fleet.faults.crashes, 0);
    assert!(fleet.faults.orphaned.is_empty(), "nothing can orphan without a crash");
    assert!(fleet.faults.dropped.is_empty(), "nothing can drop without a crash");
    assert_eq!(fleet.report.completed + fleet.report.rejected, trace.len());
}

#[test]
fn chaos_saturated_crash_rate_defers_arrivals_through_whole_fleet_outages() {
    // One crash per group-second with long outages over a two-group fleet:
    // the schedule stays well-formed (every crash recovers, windows
    // sequential per group), and both groups are down simultaneously at
    // some point — arrivals landing in that window are deferred to the
    // next recovery, not lost.
    let rates = ChaosRates {
        crash_rate: 1.0,
        mean_outage_s: 4.0,
        degrade_rate: 0.0,
        straggler_probability: 0.0,
        ..ChaosRates::default()
    };
    let faults = FaultPlan::chaos(11, 2, Time::from_secs_f64(10.0), &rates);
    let crash_count = faults
        .specs()
        .iter()
        .filter(|s| {
            if let FaultSpec::GroupCrash { recover_after, .. } = s {
                assert!(
                    recover_after.expect("chaos always schedules recovery") > Time::ZERO,
                    "saturated chaos must still recover each crash"
                );
                true
            } else {
                false
            }
        })
        .count();
    assert!(crash_count >= 2, "rate 1.0 over 10 s x 2 groups must crash repeatedly");
    let trace = fixed_trace(50.0, 19, 10.0, 10, 40);
    let opts = FleetOptions::new(2)
        .with_epoch(Time::from_secs_f64(0.05))
        .with_faults(faults)
        .with_retry(RetryPolicy { max_attempts: 6, backoff: Time::from_us(10_000) });
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(&group_system(), &trace, 50.0, &mut router, &opts);
    assert!(fleet.faults.crashes >= 2);
    // Conservation under saturation: every request completes, is rejected
    // or is accounted dropped — never silently lost.
    assert_eq!(
        fleet.report.completed + fleet.report.rejected + fleet.faults.dropped.len(),
        trace.len()
    );
    // Reconstruct the applied outage windows and find an instant where the
    // whole fleet was down (an open-ended window never ends).
    let windows = |group: usize| -> Vec<(Time, Time)> {
        fleet
            .faults
            .down_windows
            .iter()
            .filter(|(g, _, _)| *g == group)
            .map(|&(_, from, up)| (from, up.unwrap_or(Time::from_ps(u64::MAX))))
            .collect()
    };
    let mut all_down: Vec<(Time, Time)> = Vec::new();
    for &(f0, u0) in &windows(0) {
        for &(f1, u1) in &windows(1) {
            let (start, end) = (f0.max(f1), u0.min(u1));
            if start < end {
                all_down.push((start, end));
            }
        }
    }
    assert!(!all_down.is_empty(), "saturated chaos must take the whole fleet down at once");
    // Arrivals inside an all-down window cannot be served before a group
    // recovers: the driver defers them, and every one that completed got
    // its first token only after the outage broke.
    let records: std::collections::BTreeMap<u64, Time> = fleet
        .groups
        .iter()
        .flat_map(|o| o.records.iter().map(|r| (r.spec.id.0, r.first_token)))
        .collect();
    let mut deferred_and_served = 0usize;
    for spec in &trace {
        for &(start, end) in &all_down {
            if spec.arrival >= start && spec.arrival < end {
                if let Some(&first_token) = records.get(&spec.id.0) {
                    assert!(
                        first_token >= end,
                        "request {} arrived during a whole-fleet outage ({} in [{}, {})) \
                         but got a token at {} before any group recovered",
                        spec.id.0,
                        spec.arrival,
                        start,
                        end,
                        first_token
                    );
                    deferred_and_served += 1;
                }
            }
        }
    }
    assert!(
        deferred_and_served > 0,
        "at least one arrival must be deferred through the outage and then served"
    );
}

/// Extended conservation: every offered request is completed, rejected,
/// dropped or shed — never silently lost.
fn assert_conserved(out: &cent_cluster::DisaggOutcome, offered: usize) {
    assert_eq!(
        out.report.completed
            + out.report.rejected
            + out.faults.dropped.len()
            + out.faults.shed.len(),
        offered,
        "extended conservation violated"
    );
}

#[test]
fn pool_rescued_contexts_complete_exactly_once() {
    // A decode-tier crash orphans its claimed contexts; with a durable
    // pool their parked copies are rescued by the surviving decode group
    // at switch-hop cost — never re-prefilled — and each rescued request
    // still completes exactly once per tier.
    let trace = fixed_trace(24.0, 101, 6.0, 100, 400);
    let faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 2,
        at: Time::from_secs_f64(2.0),
        recover_after: Some(Time::from_secs_f64(1.0)),
    }]);
    let cfg = DisaggConfig::split(2, 2, 256_000, handoff_cost());
    let mut router = JoinShortestQueue;
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        24.0,
        &mut router,
        &FleetOptions::new(4)
            .with_epoch(Time::from_secs_f64(0.05))
            .with_faults(faults)
            .with_retry(RetryPolicy { max_attempts: 3, backoff: Time::from_us(50_000) }),
        &cfg,
    );
    assert!(!out.faults.pool_rescued.is_empty(), "a loaded decode crash must strand claims");
    assert_eq!(out.faults.pool_lost, 0, "a roomy durable pool never loses a copy");
    // Exactly-once per tier: no id completes a phase twice — in
    // particular no rescued request was re-prefilled.
    let tier_ids = |groups: std::ops::Range<usize>| -> Vec<u64> {
        let mut ids: Vec<u64> =
            groups.flat_map(|g| out.groups[g].records.iter().map(|r| r.spec.id.0)).collect();
        ids.sort_unstable();
        ids
    };
    for ids in [tier_ids(0..2), tier_ids(2..4)] {
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(ids, unique, "a phase completed twice");
    }
    // Every rescued id that was not dropped finished on the decode tier.
    let decode_ids = tier_ids(2..4);
    let dropped: Vec<u64> = out.faults.dropped.iter().map(|&(id, _)| id.0).collect();
    for (id, _) in &out.faults.pool_rescued {
        assert!(
            decode_ids.binary_search(&id.0).is_ok() || dropped.contains(&id.0),
            "rescued {id:?} neither completed nor dropped"
        );
    }
    assert_conserved(&out, trace.len());
    let degraded = out.report.degraded.as_ref().expect("faulted disagg reports degraded mode");
    assert_eq!(degraded.pool_rescued, out.faults.pool_rescued.len());
    assert!(degraded.rescue_latency.p50 > Time::ZERO, "rescue percentiles populated");
}

#[test]
fn pool_rescue_beats_reprefill_on_first_token_floors() {
    // Same trace, same decode-tier crash: the durable pool rescues parked
    // copies at transfer cost, the volatile ablation re-runs the whole
    // prompt behind the retry backoff. The failover join (crash instant to
    // the victim's next token) must therefore sit strictly lower for the
    // durable run: a rescue's floor is one pool transfer, a re-prefill's
    // floor is the backoff plus the full prompt pass.
    let backoff = Time::from_secs_f64(0.5);
    let trace = fixed_trace(16.0, 103, 6.0, 400, 400);
    let faults = || {
        FaultSchedule::new(vec![FaultSpec::GroupCrash {
            group: 2,
            at: Time::from_secs_f64(2.0),
            recover_after: Some(Time::from_secs_f64(1.0)),
        }])
    };
    let run = |cfg: DisaggConfig| {
        let mut router = JoinShortestQueue;
        simulate_fleet_disagg(
            &group_system(),
            &trace,
            16.0,
            &mut router,
            &FleetOptions::new(4)
                .with_epoch(Time::from_secs_f64(0.05))
                .with_faults(faults())
                .with_retry(RetryPolicy { max_attempts: 4, backoff }),
            &cfg,
        )
    };
    let durable = run(DisaggConfig::split(2, 2, 256_000, handoff_cost()));
    let volatile = run(DisaggConfig::split(2, 2, 256_000, handoff_cost()).with_volatile_pool());
    assert!(!durable.faults.pool_rescued.is_empty(), "durable pool must rescue");
    assert_eq!(durable.faults.pool_lost, 0);
    assert!(durable.faults.retries == 0, "nothing re-enters the prefill tier on a rescue");
    assert!(volatile.faults.pool_rescued.is_empty(), "volatile pool cannot rescue");
    assert!(volatile.faults.pool_lost > 0, "volatile pool loses every orphaned copy");
    assert!(volatile.faults.retries > 0, "lost copies re-prefill under the retry policy");
    let d = durable.report.degraded.as_ref().expect("degraded section");
    let v = volatile.report.degraded.as_ref().expect("degraded section");
    // Re-prefill cannot beat its floor: the backoff alone keeps every
    // volatile failover sample at or above it.
    assert!(v.failover_latency.p50 >= backoff, "re-prefill sits behind the retry backoff");
    assert!(
        d.failover_latency.mean < v.failover_latency.mean,
        "rescue must beat re-prefill: {} vs {}",
        d.failover_latency.mean,
        v.failover_latency.mean
    );
    assert_conserved(&durable, trace.len());
    assert_conserved(&volatile, trace.len());
}

#[test]
fn warm_rejoin_is_never_worse_than_cold_on_the_same_schedule() {
    // With a retry backoff at least as long as the outage, a cold
    // redispatch is never ready before the crashed group recovers — while
    // warm recovery re-seeds the retained contexts at the recovery instant
    // with their KV intact. The failover join can therefore only improve.
    let trace = fixed_trace(45.0, 201, 4.0, 16, 200);
    let faults = || {
        FaultSchedule::new(vec![FaultSpec::GroupCrash {
            group: 0,
            at: Time::from_secs_f64(1.0),
            recover_after: Some(Time::from_secs_f64(1.0)),
        }])
    };
    let run = |recovery: RecoveryMode| {
        let mut router = JoinShortestQueue;
        simulate_fleet_instrumented(
            &group_system(),
            &trace,
            45.0,
            &mut router,
            &FleetOptions::new(3)
                .with_epoch(Time::from_secs_f64(0.05))
                .with_faults(faults())
                .with_retry(RetryPolicy { max_attempts: 3, backoff: Time::from_secs_f64(1.5) })
                .with_recovery(recovery),
        )
    };
    let cold = run(RecoveryMode::Cold);
    let warm = run(RecoveryMode::Warm { retained_fraction: 1.0 });
    assert!(!cold.faults.orphaned.is_empty(), "a loaded group must strand work");
    assert_eq!(cold.faults.cold_rejoins, 1);
    assert!(warm.faults.warm_rejoins > 0, "full retention must warm-rejoin");
    assert_eq!(warm.faults.retries, 0, "fully retained orphans never redispatch");
    let cd = cold.report.degraded.as_ref().expect("degraded section");
    let wd = warm.report.degraded.as_ref().expect("degraded section");
    assert_eq!(cd.orphaned, wd.orphaned, "same schedule orphans the same work");
    assert!(
        wd.failover_latency.mean <= cd.failover_latency.mean,
        "warm mean failover regressed: {} vs {}",
        wd.failover_latency.mean,
        cd.failover_latency.mean
    );
    assert!(
        wd.failover_latency.max <= cd.failover_latency.max,
        "warm tail failover regressed: {} vs {}",
        wd.failover_latency.max,
        cd.failover_latency.max
    );
    for fleet in [&cold, &warm] {
        assert_eq!(
            fleet.report.completed + fleet.report.rejected + fleet.faults.dropped.len(),
            trace.len()
        );
    }
}

#[test]
fn disagg_chaos_with_recovery_and_admission_is_thread_count_invariant() {
    // The full survivability stack at once: disagg chaos (tier-weighted
    // crashes + pool-link degrades), warm recovery, bounded retries and a
    // class-aware admission policy — bit-identical across 1/2/8 workers.
    let trace = fixed_trace(100.0, 303, 20.0, 64, 48);
    let cfg = DisaggConfig::split(2, 2, 64_000, handoff_cost()).with_prefill_chunk(32);
    let rates = ChaosRates {
        crash_rate: 1.0 / 8.0,
        mean_outage_s: 2.0,
        pool_degrade_rate: 1.0 / 10.0,
        mean_pool_degrade_s: 2.0,
        ..ChaosRates::default()
    };
    let faults = FaultPlan::chaos_disagg(0xFA7, &cfg.roles, Time::from_secs_f64(20.0), &rates);
    assert!(!faults.is_empty(), "elevated rates must inject within 20 s");
    let run = |threads: usize| {
        let mut router = JoinShortestQueue;
        simulate_fleet_disagg(
            &group_system(),
            &trace,
            100.0,
            &mut router,
            &FleetOptions::new(4)
                .with_threads(threads)
                .with_epoch(Time::from_secs_f64(0.05))
                .with_faults(faults.clone())
                .with_retry(RetryPolicy { max_attempts: 4, backoff: Time::from_us(100_000) })
                .with_recovery(RecoveryMode::Warm { retained_fraction: 0.5 })
                .with_admission(
                    AdmissionPolicy::shed_above(4.0).with_class(PriorityClass::BATCH, 2.0),
                ),
            &cfg,
        )
    };
    let base = run(1);
    assert!(base.faults.crashes > 0, "chaos must crash within the horizon");
    assert_conserved(&base, trace.len());
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(base.report, other.report, "threads {threads} diverged from 1");
        assert_eq!(base.routed, other.routed, "threads {threads} changed routing");
        assert_eq!(base.log, other.log, "threads {threads} changed the disagg log");
        assert_eq!(base.faults, other.faults, "threads {threads} changed the fault log");
    }
}

#[test]
fn event_free_schedule_reproduces_the_fault_free_split_driver() {
    // The fault machinery must be pay-for-what-you-use: an empty schedule
    // (and the inert default recovery/admission knobs) keeps the split
    // driver on the exact fault-free path, bit for bit.
    let trace = fixed_trace(120.0, 29, 15.0, 64, 48);
    let cfg = DisaggConfig::split(2, 2, 64_000, handoff_cost()).with_prefill_chunk(32);
    let run = |opts: FleetOptions| {
        let mut router = JoinShortestQueue;
        simulate_fleet_disagg(&group_system(), &trace, 120.0, &mut router, &opts, &cfg)
    };
    let base_opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
    let plain = run(base_opts.clone());
    let quiet = run(base_opts
        .with_faults(FaultSchedule::empty())
        .with_recovery(RecoveryMode::Warm { retained_fraction: 1.0 })
        .with_admission(AdmissionPolicy::admit_all()));
    assert_eq!(plain.report, quiet.report, "inert knobs perturbed the report");
    assert_eq!(plain.routed, quiet.routed, "inert knobs perturbed routing");
    assert_eq!(plain.log, quiet.log, "inert knobs perturbed the disagg log");
    assert!(plain.report.degraded.is_none(), "no schedule, no degraded section");
    assert!(quiet.report.degraded.is_none(), "an event-free run reports no degraded section");
}

#[test]
fn admission_sheds_lower_classes_first_and_conserves_accounting() {
    // A fleet driven past saturation with a class-aware policy: batch
    // sheds at a lower threshold than interactive, every shed is counted
    // by class, and the extended conservation invariant still closes.
    let mut trace = fixed_trace(400.0, 71, 10.0, 64, 64);
    for spec in trace.iter_mut().skip(1).step_by(2) {
        spec.class = PriorityClass::BATCH;
    }
    let cfg = DisaggConfig::split(2, 2, 32_000, handoff_cost());
    let mut router = JoinShortestQueue;
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        400.0,
        &mut router,
        &FleetOptions::new(4)
            .with_epoch(Time::from_secs_f64(0.05))
            .with_admission(AdmissionPolicy::shed_above(3.0).with_class(PriorityClass::BATCH, 1.0)),
        &cfg,
    );
    assert!(!out.faults.shed.is_empty(), "saturation must shed");
    let by_class = |class: PriorityClass| -> usize {
        out.faults.shed.iter().filter(|&&(_, c)| c == class).count()
    };
    assert!(by_class(PriorityClass::BATCH) > 0, "batch sheds first");
    assert!(
        by_class(PriorityClass::BATCH) >= by_class(PriorityClass::INTERACTIVE),
        "the lower threshold cannot shed less on an even class mix"
    );
    assert_conserved(&out, trace.len());
    let degraded = out.report.degraded.as_ref().expect("shedding reports degraded mode");
    assert_eq!(degraded.shed, out.faults.shed.len());
    assert_eq!(
        degraded.shed_by_class.iter().map(|&(_, n)| n).sum::<usize>(),
        degraded.shed,
        "per-class shed counts cover every shed"
    );
}

#[test]
fn standby_spares_promote_to_cover_crashes() {
    // A two-spare standby reserve on the decode tier: the crash of a
    // serving decode group promotes a spare, so the tier keeps serving and
    // the promotion is counted.
    let trace = fixed_trace(20.0, 401, 6.0, 64, 200);
    let faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 3,
        at: Time::from_secs_f64(1.0),
        recover_after: Some(Time::from_secs_f64(2.0)),
    }]);
    let cfg = DisaggConfig::split(2, 3, 128_000, handoff_cost());
    let mut router = JoinShortestQueue;
    let out = simulate_fleet_disagg(
        &group_system(),
        &trace,
        20.0,
        &mut router,
        &FleetOptions::new(5)
            .with_epoch(Time::from_secs_f64(0.05))
            .with_faults(faults)
            .with_retry(RetryPolicy { max_attempts: 3, backoff: Time::from_us(100_000) })
            .with_recovery(RecoveryMode::Standby { spares: 1 }),
        &cfg,
    );
    assert_eq!(out.faults.promotions, 1, "the decode spare must promote on the crash");
    assert_conserved(&out, trace.len());
    // The promoted spare (the last decode group) actually served.
    assert!(out.groups[4].report.completed > 0, "the promoted spare never served");
}
