//! Property-style tests for the cluster-level fleet simulator.
//!
//! No external crates, so properties run over seeded workloads from the
//! in-tree deterministic PRNG. They pin the determinism contract of
//! `cent_cluster::simulate_fleet`:
//!
//! 1. the merged `FleetReport` is **bit-identical across worker-thread
//!    counts** (1 / 2 / 8) for the same seed — including the acceptance
//!    shape, a 1000-group diurnal hour with over a million requests;
//! 2. session-affinity routing never splits a session across groups;
//! 3. power-of-two-choices routing is fully determined by its seed;
//! 4. the merged fleet histogram equals the concatenation of the
//!    per-group populations, in any merge order, and the fleet latency
//!    distributions equal those recomputed from the concatenated records.

use cent_cluster::{
    simulate_fleet, simulate_fleet_instrumented, FleetOptions, JoinShortestQueue,
    PowerOfTwoChoices, RoundRobin, RoutingPolicy, SessionAffinity,
};
use cent_model::ModelConfig;
use cent_serving::{
    KvBudget, KvMode, LatencyStats, LengthSampler, LoadCurve, RequestSpec, SchedulerConfig,
    ServingSystem, Workload,
};
use cent_types::{SortedSamples, Time, TimeHistogram};

/// One pipeline group: 4 decode slots, 1 ms token cadence, 1000 tok/s
/// prefill — the serving crate's reference toy deployment.
fn group_system() -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: 4,
            kv_budget: KvBudget::tokens(4000),
            kv: KvMode::FullReservation,
        },
        Time::from_us(1000),
        1000.0,
        4000.0,
    )
}

fn fixed_trace(
    qps: f64,
    seed: u64,
    horizon_s: f64,
    prompt: usize,
    decode: usize,
) -> Vec<RequestSpec> {
    let w = Workload {
        lengths: LengthSampler::Fixed { prompt, decode },
        ..Workload::chatbot(qps, seed)
    };
    w.generate(Time::from_secs_f64(horizon_s), 4096)
}

fn run_threads(
    trace: &[RequestSpec],
    qps: f64,
    groups: usize,
    epoch: Time,
    threads: usize,
    mut router: Box<dyn RoutingPolicy>,
) -> cent_cluster::FleetReport {
    simulate_fleet(
        &group_system(),
        trace,
        qps,
        router.as_mut(),
        &FleetOptions::new(groups).with_threads(threads).with_epoch(epoch),
    )
}

#[test]
fn fleet_report_is_bit_identical_across_worker_threads() {
    let trace = fixed_trace(200.0, 17, 30.0, 16, 32);
    let epoch = Time::from_secs_f64(0.05);
    let routers: Vec<fn() -> Box<dyn RoutingPolicy>> = vec![
        || Box::new(JoinShortestQueue),
        || Box::new(PowerOfTwoChoices::seeded(42)),
        || Box::new(RoundRobin::default()),
        || Box::new(SessionAffinity),
    ];
    for make in routers {
        let base = run_threads(&trace, 200.0, 32, epoch, 1, make());
        assert_eq!(base.completed, trace.len());
        for threads in [2, 8] {
            let other = run_threads(&trace, 200.0, 32, epoch, threads, make());
            assert_eq!(base, other, "threads {threads} diverged from 1");
        }
    }
}

/// The ISSUE acceptance shape: a 1000-group fleet serving a diurnal hour
/// with over a million requests, bit-identical across 1/2/8 workers.
#[test]
fn thousand_group_diurnal_hour_is_thread_count_invariant() {
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 32, decode: 64 },
        ..Workload::chatbot(290.0, 4242)
    };
    let curve = LoadCurve::diurnal(3600.0, 0.5, 1.5);
    let trace = workload.generate_modulated(Time::from_secs_f64(3600.0), 4096, &curve, 77);
    assert!(trace.len() >= 1_000_000, "only {} requests", trace.len());
    let epoch = Time::from_secs_f64(1.0);
    let run = |threads: usize| {
        let mut router = PowerOfTwoChoices::seeded(9);
        simulate_fleet(
            &group_system(),
            &trace,
            290.0,
            &mut router,
            &FleetOptions::new(1000).with_threads(threads).with_epoch(epoch),
        )
    };
    let base = run(1);
    assert_eq!(base.submitted, trace.len());
    assert_eq!(base.completed, trace.len());
    assert_eq!(base.groups, 1000);
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "threads {threads} diverged from 1");
    }
}

#[test]
fn session_affinity_never_splits_a_session() {
    let mut trace = fixed_trace(150.0, 23, 20.0, 16, 32);
    Workload::assign_sessions(&mut trace, 40, 5);
    let mut router = SessionAffinity;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        150.0,
        &mut router,
        &FleetOptions::new(16).with_epoch(Time::from_secs_f64(0.1)),
    );
    // Routing decisions: one group per session.
    let mut session_group = std::collections::BTreeMap::new();
    for (spec, &g) in trace.iter().zip(&fleet.routed) {
        let prior = session_group.entry(spec.session).or_insert(g);
        assert_eq!(*prior, g, "session {:?} split across groups", spec.session);
    }
    // And the served records agree: every record of a session lives in
    // that session's group outcome.
    for (g, outcome) in fleet.groups.iter().enumerate() {
        for r in &outcome.records {
            assert_eq!(session_group[&r.spec.session], g);
        }
    }
    assert!(session_group.len() <= 40);
}

#[test]
fn power_of_two_routing_is_deterministic_per_seed() {
    let trace = fixed_trace(150.0, 31, 15.0, 16, 32);
    let opts = FleetOptions::new(24).with_epoch(Time::from_secs_f64(0.1));
    let routed = |seed: u64| {
        let mut router = PowerOfTwoChoices::seeded(seed);
        simulate_fleet_instrumented(&group_system(), &trace, 150.0, &mut router, &opts).routed
    };
    assert_eq!(routed(1), routed(1), "same seed must reproduce every decision");
    assert_ne!(routed(1), routed(2), "different seeds should diverge");
}

#[test]
fn merged_fleet_histogram_equals_concatenated_populations() {
    let trace = fixed_trace(220.0, 53, 20.0, 16, 32);
    let mut router = JoinShortestQueue;
    let fleet = simulate_fleet_instrumented(
        &group_system(),
        &trace,
        220.0,
        &mut router,
        &FleetOptions::new(8).with_epoch(Time::from_secs_f64(0.05)),
    );
    // Histogram merge is order-independent and equals the concatenation.
    let mut forward = TimeHistogram::new();
    for o in &fleet.groups {
        forward.merge(&o.tbt);
    }
    let mut backward = TimeHistogram::new();
    for o in fleet.groups.iter().rev() {
        backward.merge(&o.tbt);
    }
    assert_eq!(forward, backward);
    assert_eq!(fleet.report.tbt, LatencyStats::from_histogram(&forward));
    assert_eq!(forward.count(), fleet.groups.iter().map(|o| o.tbt.count()).sum::<u64>());
    // Fleet latency distributions equal those recomputed from the
    // concatenated per-group record populations.
    let all: Vec<_> = fleet.groups.iter().flat_map(|o| o.records.iter()).collect();
    let ttfts = SortedSamples::new(all.iter().map(|r| r.ttft()).collect());
    let lats = SortedSamples::new(all.iter().map(|r| r.query_latency()).collect());
    assert_eq!(fleet.report.ttft, LatencyStats::from_sorted(&ttfts));
    assert_eq!(fleet.report.query_latency, LatencyStats::from_sorted(&lats));
    assert_eq!(fleet.report.completed, all.len());
}
