//! CENT — "PIM Is All You Need": a CXL-enabled, GPU-free system for LLM
//! inference (ASPLOS'25 reproduction).
//!
//! This is the workspace facade: it re-exports every substrate crate under
//! one roof plus the most common types at the top level, so examples and
//! downstream users can write `use cent::{CentSystem, ModelConfig, ...}` or
//! reach into a substrate via `cent::sim`, `cent::serving`, and so on.

#![forbid(unsafe_code)]

pub use cent_baselines as baselines;
pub use cent_cluster as cluster;
pub use cent_compiler as compiler;
pub use cent_core as core_api;
pub use cent_cost as cost;
pub use cent_cxl as cxl;
pub use cent_device as device;
pub use cent_dram as dram;
pub use cent_isa as isa;
pub use cent_model as model;
pub use cent_pim as pim;
pub use cent_pnm as pnm;
pub use cent_power as power;
pub use cent_riscv as riscv;
pub use cent_serving as serving;
pub use cent_sim as sim;
pub use cent_types as types;

pub use cent_cluster::{
    simulate_fleet, FaultPlan, FaultSchedule, FleetOptions, FleetReport, RetryPolicy, RoutingPolicy,
};
pub use cent_compiler::{Strategy, SystemMapping};
pub use cent_core::{verify_block, CentSystem, VerifyReport};
pub use cent_device::LatencyBreakdown;
pub use cent_model::{BlockWeights, KvCache, ModelConfig};
pub use cent_serving::{
    KvMode, SchedulingPolicy, ServeOptions, ServingReport, ServingSystem, TickEngine, Workload,
};
pub use cent_sim::{evaluate, CentPerformance};
pub use cent_types::{Bf16, ByteSize, CentError, CentResult, Time};
