pub use cent as core_api;
