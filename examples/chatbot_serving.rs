//! Chatbot serving: the throughput-critical deployment of §5.1/§7.1 —
//! Llama2-7B pipeline-parallel across 8 CXL devices, with the paper's
//! 512-in/3584-out query mix.
//!
//! Run with: `cargo run --release --example chatbot_serving`
use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::evaluate;

fn main() -> Result<(), cent_types::CentError> {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    println!("serving {} on {devices} CENT devices (pipeline parallel)...", cfg.name);
    let perf = evaluate(&cfg, devices, Strategy::PipelineParallel, 4096)?;
    println!("pipeline stages (= batch): {}", perf.mapping.batch);
    println!("channels per block:        {}", perf.mapping.channels_per_block);
    println!("block step time:           {}", perf.block.total);
    println!("decode throughput:         {:.0} tokens/s", perf.decode_tokens_per_s);
    println!("prefill throughput:        {:.0} tokens/s", perf.prefill_tokens_per_s);
    println!("token latency per query:   {}", perf.token_latency);
    let q = perf.query_latency(512, 3584);
    println!("query latency (512+3584):  {:.2} min", q.as_secs() / 60.0);
    println!("queries per minute:        {:.2}", perf.queries_per_minute(512, 3584));
    let b = perf.breakdown;
    println!(
        "per-token breakdown: PIM {:.1}% | PNM {:.1}% | CXL {:.1}% | host {:.1}%",
        100.0 * b.pim.as_secs() / b.total().as_secs(),
        100.0 * b.pnm.as_secs() / b.total().as_secs(),
        100.0 * b.cxl.as_secs() / b.total().as_secs(),
        100.0 * b.host.as_secs() / b.total().as_secs(),
    );
    Ok(())
}
