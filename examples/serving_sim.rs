//! Request-level serving: the throughput–latency knee of a CENT deployment.
//!
//! Sweeps offered load (Poisson arrivals of the paper's 512/3584 chatbot
//! queries) against Llama2-7B pipeline-parallel on 8 CXL devices. Below
//! saturation, p99 query latency sits near the service time; past the knee
//! the queue grows and p99 blows up while delivered tokens/s plateaus at
//! the steady-state throughput of `cent_sim::evaluate`.
//!
//! Run with: `cargo run --release --example serving_sim`
use cent::serving::{ServingSystem, Workload};
use cent::{ModelConfig, Strategy, Time};

fn main() -> Result<(), cent::CentError> {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    println!("planning {} on {devices} CENT devices (pipeline parallel)...", cfg.name);
    let system = ServingSystem::plan(&cfg, devices, Strategy::PipelineParallel, 4096)?;
    let steady = system.steady_state_tokens_per_s();
    let capacity_qps = system.capacity_qps(512, 3584);
    println!("steady-state decode throughput: {steady:.0} tokens/s");
    println!("chatbot capacity (512 in / 3584 out): {capacity_qps:.3} queries/s");
    println!("decode slots: {} | KV budget sized from the mapping\n", system.total_slots());

    let horizon = Time::from_secs_f64(3600.0);
    println!(
        "{:>6}  {:>9}  {:>10}  {:>9}  {:>10}  {:>10}  {:>6}",
        "load", "q/s", "tokens/s", "% steady", "TTFT p99", "p99 lat", "util"
    );
    let mut plateau = 0.0_f64;
    for load in [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5] {
        let rate = load * capacity_qps;
        let workload = Workload::chatbot(rate, 0xCE27);
        let report = system.run(&workload, horizon);
        println!(
            "{:>5.2}x  {:>9.3}  {:>10.0}  {:>8.1}%  {:>10}  {:>10}  {:>5.0}%",
            load,
            rate,
            report.tokens_per_s,
            100.0 * report.throughput_fraction(),
            report.ttft.p99,
            report.query_latency.p99,
            100.0 * report.slot_utilization,
        );
        plateau = plateau.max(report.throughput_fraction());
    }
    println!(
        "\npeak delivered throughput: {:.1}% of the steady-state oracle \
         (the scheduler converges to §7.1's numbers under full load)",
        100.0 * plateau
    );
    assert!(
        (0.9..=1.1).contains(&plateau),
        "saturated throughput should land within 10% of evaluate()"
    );
    Ok(())
}
