//! Real-time serving: the latency-critical tensor-parallel deployment of
//! §5.2, plus the hybrid TP-PP QoS spectrum of §5.3 / Figure 14(b).
//!
//! Run with: `cargo run --release --example realtime_latency`
use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::{evaluate, qos_sweep};

fn main() -> Result<(), cent_types::CentError> {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    println!("latency-critical serving of {} on {devices} devices\n", cfg.name);
    let tp = evaluate(&cfg, devices, Strategy::TensorParallel, 4096)?;
    println!("tensor parallel (TP={devices}, batch 1):");
    println!("  token latency:   {}", tp.token_latency);
    println!("  tokens/s:        {:.1}", tp.decode_tokens_per_s);

    println!("\nQoS spectrum (512-in / 3584-out queries):");
    println!("{:>16} {:>18} {:>16}", "mapping", "query latency (min)", "queries/min");
    for p in qos_sweep(&cfg, devices, 4096, 512, 3584)? {
        println!("{:>16} {:>18.2} {:>16.2}", p.label, p.query_latency_min, p.queries_per_min);
    }
    Ok(())
}
