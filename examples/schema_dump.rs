//! Dumps one worked example of every public JSON schema — the helper that
//! regenerates the examples committed in `docs/SCHEMAS.md` (each one is
//! checked against the live serialisers by `tests/schema_docs.rs`, which
//! includes this file as a module so the docs and the test can never run
//! different configurations).
//!
//! Run with `cargo run --release --example schema_dump`; the five JSON
//! documents print to stdout separated by `--- <name>` markers. Paste
//! them into `docs/SCHEMAS.md` pretty-printed (the committed blocks are
//! the same values reformatted for readability).

use cent::cluster::{
    simulate_fleet, simulate_fleet_disagg, AdmissionPolicy, ChaosRates, DisaggConfig, FaultPlan,
    FaultSchedule, FaultSpec, FleetOptions, JoinShortestQueue, RecoveryMode, RetryPolicy,
};
use cent::cxl::FabricConfig;
use cent::serving::{
    ClassMix, KvBudget, KvMode, LengthSampler, SchedulerConfig, ServeOptions, ServingSystem,
    Workload,
};
use cent::{ModelConfig, Time};

fn system() -> ServingSystem {
    ServingSystem::from_parts(
        &ModelConfig::llama2_7b(),
        SchedulerConfig {
            replicas: 1,
            slots_per_replica: 4,
            kv_budget: KvBudget::tokens(4000),
            kv: KvMode::FullReservation,
        },
        Time::from_us(1000),
        1000.0,
        4000.0,
    )
}

/// One compact JSON document per public schema, keyed by the marker name
/// used in `docs/SCHEMAS.md` (`serving_report`, `fleet_report`,
/// `fleet_report_degraded`, `fleet_report_disagg`,
/// `fleet_report_disagg_faulted`).
pub fn dumps() -> Vec<(&'static str, String)> {
    let sys = system();
    let workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 16, decode: 32 },
        classes: ClassMix::two_tier(0.5),
        ..Workload::chatbot(60.0, 7)
    };
    let horizon = Time::from_secs_f64(5.0);
    let trace = workload.generate(horizon, 4096);

    let report = sys.serve_trace_with(
        &trace,
        60.0,
        ServeOptions::default().with_slo(Time::from_secs_f64(0.5)),
    );

    let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
    let fleet = simulate_fleet(&sys, &trace, 60.0, &mut JoinShortestQueue, &opts);

    let faults = FaultPlan::chaos(
        7,
        4,
        horizon,
        &ChaosRates { crash_rate: 0.5, mean_outage_s: 0.5, ..ChaosRates::default() },
    );
    let faulted_opts = opts
        .clone()
        .with_faults(faults)
        .with_retry(RetryPolicy { max_attempts: 3, backoff: Time::from_us(10_000) })
        .with_recovery(RecoveryMode::Warm { retained_fraction: 1.0 })
        .with_admission(AdmissionPolicy::shed_above(2.0));
    let faulted = simulate_fleet(&sys, &trace, 60.0, &mut JoinShortestQueue, &faulted_opts);

    let cost = sys.swap_cost().with_switch_hops(2, &FabricConfig::cent(32));
    let disagg_cfg = DisaggConfig::split(2, 2, 64_000, cost).with_prefill_chunk(32);
    let disagg =
        simulate_fleet_disagg(&sys, &trace, 60.0, &mut JoinShortestQueue, &opts, &disagg_cfg);

    // A decode-tier crash against the same split fleet: the degraded
    // section then carries live pool-rescue rows (parked copies revived
    // at switch-hop cost instead of re-prefilled). Decodes long enough to
    // span epoch stops, so the crash catches claimed contexts in flight.
    let long_workload = Workload {
        lengths: LengthSampler::Fixed { prompt: 16, decode: 400 },
        classes: ClassMix::two_tier(0.5),
        ..Workload::chatbot(12.0, 9)
    };
    let long_trace = long_workload.generate(horizon, 4096);
    let disagg_faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
        group: 2,
        at: Time::from_secs_f64(1.5),
        recover_after: Some(Time::from_secs_f64(0.5)),
    }]);
    let disagg_faulted_opts = opts
        .with_faults(disagg_faults)
        .with_retry(RetryPolicy { max_attempts: 3, backoff: Time::from_us(10_000) });
    let disagg_faulted = simulate_fleet_disagg(
        &sys,
        &long_trace,
        12.0,
        &mut JoinShortestQueue,
        &disagg_faulted_opts,
        &disagg_cfg,
    );

    vec![
        ("serving_report", report.to_json()),
        ("fleet_report", fleet.to_json()),
        ("fleet_report_degraded", faulted.to_json()),
        ("fleet_report_disagg", disagg.report.to_json()),
        ("fleet_report_disagg_faulted", disagg_faulted.report.to_json()),
    ]
}

#[allow(dead_code)]
fn main() {
    for (name, json) in dumps() {
        println!("--- {name}");
        println!("{json}");
    }
}
