//! Capacity management head-to-head: full-reservation vs token-granular KV
//! occupancy, the pluggable scheduling policies, and the swap-to-CXL spill
//! tier, at one saturated operating point of the paper's chatbot mix.
//!
//! The per-replica KV budget is constrained to a third of the slots' full
//! 4096-token contexts, so admission strategy decides concurrency: full
//! reservation parks 4096 tokens per query from its first instant, while
//! token-granular occupancy grows one token per decode step (§5.4's
//! capacity-managed regime) and evicts a resident when the optimism loses
//! — requeueing it for recompute, or, with the spill tier enabled, paging
//! its KV to CXL host memory and back at host-link speed instead. The
//! workload is a two-tier priority mix, so the per-class rows show the
//! eviction pressure landing on background traffic first.
//!
//! Run with: `cargo run --release --example serving_policy_compare`
use cent::serving::{
    ClassMix, DeadlineAware, KvBudget, KvSpillConfig, KvSpillMode, ServeOptions, ServingReport,
    ServingSystem, ShortestRemainingDecode, Workload,
};
use cent::{ModelConfig, Strategy, Time};

fn main() -> Result<(), cent::CentError> {
    let cfg = ModelConfig::llama2_7b();
    let devices = 8;
    println!("planning {} on {devices} CENT devices (pipeline parallel)...", cfg.name);
    let system = ServingSystem::plan(&cfg, devices, Strategy::PipelineParallel, 4096)?;
    let slots_per_replica = system.total_slots() / system.replicas();
    let budget = KvBudget::tokens((slots_per_replica as u64 * 4096).div_ceil(3));
    let system = system.with_kv_budget(budget);

    let capacity = system.capacity_qps(512, 3584);
    let token_interval_s = system.total_slots() as f64 / system.steady_state_tokens_per_s();
    let slo = Time::from_secs_f64(2.0 * 3584.0 * token_interval_s);
    println!(
        "KV budget {} tokens/replica ({} slots) | offered load {capacity:.3} q/s (the \
         uncapped knee) | SLO {slo}\n",
        budget.tokens,
        system.total_slots(),
    );

    let workload = Workload::chatbot(capacity, 0xCE27).with_classes(ClassMix::two_tier(0.5));
    let horizon = Time::from_secs_f64(600.0);
    // Swap tier: host pool for 4x the device budget, costed by this
    // deployment's KV footprint over the paper's CXL host link.
    let spill = KvSpillConfig::cost_driven(4 * budget.tokens, system.swap_cost());
    let configs: [(&str, ServeOptions); 6] = [
        ("full + fifo", ServeOptions::default().with_slo(slo)),
        ("token + fifo", ServeOptions::token_granular().with_slo(slo)),
        (
            "token + swap",
            ServeOptions::token_granular()
                .with_spill(spill.with_mode(KvSpillMode::SwapOnly))
                .with_slo(slo),
        ),
        ("token + cost", ServeOptions::token_granular().with_spill(spill).with_slo(slo)),
        (
            "token + srd",
            ServeOptions::token_granular()
                .with_policy(Box::new(ShortestRemainingDecode))
                .with_slo(slo),
        ),
        (
            "token + deadline",
            ServeOptions::token_granular()
                .with_policy(Box::new(DeadlineAware { slo }))
                .with_slo(slo),
        ),
    ];

    println!(
        "{:>16}  {:>9}  {:>6}  {:>8}  {:>10}  {:>8}  {:>6}  {:>9}",
        "config", "tokens/s", "slots", "KV mean", "p99 lat", "preempt", "swaps", "goodput"
    );
    let mut full: Option<ServingReport> = None;
    let mut token_fifo: Option<ServingReport> = None;
    let mut swap_only: Option<ServingReport> = None;
    let mut cost_driven: Option<ServingReport> = None;
    for (name, options) in configs {
        let r = system.run_with(&workload, horizon, options);
        println!(
            "{:>16}  {:>9.0}  {:>5.0}%  {:>7.0}%  {:>10}  {:>8}  {:>6}  {:>9.3}",
            name,
            r.tokens_per_s,
            100.0 * r.slot_utilization,
            100.0 * r.kv_utilization,
            r.query_latency.p99,
            r.preemptions,
            r.swaps,
            r.goodput_qps,
        );
        match name {
            "full + fifo" => full = Some(r),
            "token + fifo" => token_fifo = Some(r),
            "token + swap" => swap_only = Some(r),
            "token + cost" => cost_driven = Some(r),
            _ => {}
        }
    }

    let (full, token) = (full.expect("ran"), token_fifo.expect("ran"));
    let (swap, cost) = (swap_only.expect("ran"), cost_driven.expect("ran"));
    println!(
        "\ntoken-granular admits {:.1}x the concurrency of full reservation \
         ({:.0}% vs {:.0}% slot occupancy) and delivers {:.2}x the throughput \
         at the same offered load",
        token.slot_utilization / full.slot_utilization,
        100.0 * token.slot_utilization,
        100.0 * full.slot_utilization,
        token.tokens_per_s / full.tokens_per_s,
    );
    if cost.swaps > 0 {
        println!(
            "the cost-driven spill tier moved {} evictions to CXL host memory \
             (pool peak {}/{} tokens), cutting eviction stall from {} to {}",
            cost.swaps,
            cost.host_kv_peak_tokens,
            cost.host_pool_tokens,
            token.eviction_stall(),
            cost.eviction_stall(),
        );
    }
    for class in &cost.classes {
        println!(
            "  class {}: {}/{} done | TTFT p99 {} | goodput {:.3} q/s",
            class.class, class.completed, class.submitted, class.ttft.p99, class.goodput_qps,
        );
    }
    assert!(
        token.slot_utilization > full.slot_utilization && token.tokens_per_s >= full.tokens_per_s,
        "token-granular occupancy should dominate full reservation at a \
         KV-bound operating point"
    );
    // The guarantee the greedy per-victim comparator actually provides
    // (and the property test pins): dominance over the WORSE pure mode —
    // the comparator perturbs the eviction sequence, so beating the
    // better pure mode globally is not promised.
    assert!(
        cost.eviction_stall() <= token.eviction_stall().max(swap.eviction_stall()),
        "the cost-driven tier should never stall more than the worse pure mode"
    );
    Ok(())
}
