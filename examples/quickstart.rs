//! Quickstart: build a CENT system, load a model, decode tokens, and verify
//! against the f32 reference.
//!
//! Run with: `cargo run --example quickstart`
use cent::{verify_block, CentSystem, ModelConfig, Strategy};

fn main() -> Result<(), cent::CentError> {
    // A miniature Llama2-style model (2 blocks, GQA, gated-SiLU FFN) that the
    // functional simulator carries end to end.
    let cfg = ModelConfig::tiny();
    println!("model: {} ({} blocks, hidden {})", cfg.name, cfg.layers, cfg.hidden);

    let mut system = CentSystem::functional(&cfg, 1, Strategy::PipelineParallel)?;
    system.load_random_weights(42)?;
    println!(
        "mapped onto {} device(s), {} channels per block",
        system.mapping().used_devices,
        system.mapping().channels_per_block
    );

    // Decode three tokens through every block.
    let mut x: Vec<f32> = (0..cfg.hidden).map(|i| 0.05 * (i as f32 * 0.11).sin()).collect();
    for pos in 0..3 {
        x = system.decode_token(&x, pos)?;
        println!("token {pos}: out[0..4] = {:?}", &x[..4]);
    }

    // The simulation is bit-level BF16; check block 0 against the reference.
    let report = verify_block(&mut system, 0, 3, 0.05)?;
    println!(
        "verified {} tokens against the f32 reference (max error {:.4} of vector scale)",
        report.tokens, report.max_rel_error
    );
    println!("simulated device time: {}", system.elapsed());
    Ok(())
}
