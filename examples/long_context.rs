//! Long-context study: how CENT's decode advantage grows with context
//! length (Figure 14a), using the GPU baseline for comparison.
//!
//! Run with: `cargo run --release --example long_context`
use cent_baselines::GpuSystem;
use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::evaluate;

fn main() -> Result<(), cent_types::CentError> {
    let gpu = GpuSystem::a100x(1);
    println!("Llama2-7B decode throughput, CENT (8 devices) vs 1xA100:\n");
    println!("{:>8} {:>14} {:>14} {:>10}", "context", "CENT tok/s", "GPU tok/s", "speedup");
    for ctx in [1024usize, 2048, 4096] {
        let cfg = ModelConfig { max_context: ctx, ..ModelConfig::llama2_7b() };
        let cent = evaluate(&cfg, 8, Strategy::PipelineParallel, ctx)?;
        let batch = gpu.max_batch(&cfg, ctx).clamp(1, 128);
        let gpu_tput = gpu.decode_tokens_per_s(&cfg, batch, ctx);
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>9.2}x",
            ctx,
            cent.decode_tokens_per_s,
            gpu_tput,
            cent.decode_tokens_per_s / gpu_tput
        );
    }
    println!("\n(longer contexts shrink the GPU's feasible batch; CENT's PIM");
    println!(" bandwidth keeps attention cheap — the Figure 14a effect)");
    Ok(())
}
