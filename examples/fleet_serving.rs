//! Cluster routing head-to-head: join-shortest-queue vs power-of-two
//! choices vs round-robin tail latency on a diurnal 256-group fleet.
//!
//! Each group is one PP/8 Llama-2 7B deployment (the paper's pipeline
//! mapping); a cluster router in front dispatches every arrival using only
//! the O(1) per-group load index. The offered load follows a triangle-wave
//! diurnal curve — trough half the mean, peak 1.5× — so the fleet spends
//! part of the day saturated, which is exactly where routing quality shows
//! up in the tail: round-robin ignores load and pays p99, two random
//! probes recover most of the gap, full JSQ sets the floor.
//!
//! Run with: `cargo run --release --example fleet_serving`
use cent::cluster::{
    simulate_fleet, FleetOptions, FleetReport, JoinShortestQueue, PowerOfTwoChoices, RoundRobin,
    RoutingPolicy,
};
use cent::serving::{LengthSampler, LoadCurve, ServingSystem, Workload};
use cent::{ModelConfig, Strategy, Time};

fn main() -> Result<(), cent::CentError> {
    let cfg = ModelConfig::llama2_7b();
    let groups = 256;
    println!("planning {} on 8 CENT devices (pipeline parallel) x{groups} groups...", cfg.name);
    let system = ServingSystem::plan(&cfg, 8, Strategy::PipelineParallel, 4096)?;

    // ShareGPT-like heterogeneous lengths (heavy decode tail): with
    // variable request sizes, blind equal-count spreading leaves some
    // groups holding several elephants — that is the gap load-aware
    // routing closes. The diurnal peak reaches ~0.9x fleet capacity, busy
    // enough for queues to form, below the knee so they drain.
    let (mean_prompt, mean_decode) = (160, 210);
    let fleet_capacity = groups as f64 * system.capacity_qps(mean_prompt, mean_decode);
    let base_qps = 0.6 * fleet_capacity;
    let horizon = Time::from_secs_f64(1800.0);
    let curve = LoadCurve::diurnal(1800.0, 0.5, 1.5);
    let workload =
        Workload { lengths: LengthSampler::ShareGpt, ..Workload::chatbot(base_qps, 0xF1EE7) };
    let trace = workload.generate_modulated(horizon, 4096, &curve, 99);
    println!(
        "fleet capacity {fleet_capacity:.0} q/s | base load {base_qps:.0} q/s, diurnal 0.5-1.5x \
         | {} requests over {horizon}\n",
        trace.len(),
    );

    let mut routers: Vec<Box<dyn RoutingPolicy>> = vec![
        Box::new(JoinShortestQueue),
        Box::new(PowerOfTwoChoices::seeded(0xD1CE)),
        Box::new(RoundRobin::default()),
    ];
    let opts = FleetOptions::new(groups)
        .with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .with_epoch(Time::from_secs_f64(0.25));
    let mut rows: Vec<(&'static str, FleetReport)> = Vec::new();
    for router in routers.iter_mut() {
        // cent-lint: allow(d2) -- wall-clock printout only, never reaches sim state
        let start = std::time::Instant::now();
        let report = simulate_fleet(&system, &trace, base_qps, router.as_mut(), &opts);
        println!(
            "{:>8}: simulated in {:.2?} | imbalance {:.2}-{:.2}x | peak queue {}",
            router.name(),
            start.elapsed(),
            report.imbalance.min_share,
            report.imbalance.max_share,
            report.peak_queue_depth,
        );
        rows.push((router.name(), report));
    }

    println!("\nrouter   | TTFT p50    p95      p99      | latency p99 | slots mean");
    println!("---------+-------------------------------+-------------+-----------");
    for (name, r) in &rows {
        println!(
            "{name:>8} | {:>9} {:>8} {:>8} | {:>11} | {:>8.1}%",
            format!("{}", r.ttft.p50),
            format!("{}", r.ttft.p95),
            format!("{}", r.ttft.p99),
            format!("{}", r.query_latency.p99),
            100.0 * r.slot_utilization.mean,
        );
    }
    let p99 =
        |name: &str| rows.iter().find(|(n, _)| *n == name).map(|(_, r)| r.ttft.p99).expect("row");
    if p99("rr") > p99("jsq") {
        println!(
            "\nround-robin pays {} TTFT p99 vs {} under JSQ: load-aware routing is what \
             keeps the diurnal peak out of the tail.",
            p99("rr"),
            p99("jsq"),
        );
    }
    Ok(())
}
